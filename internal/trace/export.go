package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSONL writes spans as compact JSON, one span per line — the repo's
// canonical on-disk trace form (read back by ReadJSONL and cmd/repltrace).
// The encoding is byte-deterministic for a given span sequence.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return fmt.Errorf("trace: encode span: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL span stream until EOF.
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode span: %w", err)
		}
		out = append(out, s)
	}
}

// SaveJSONL writes spans to path.
func SaveJSONL(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteJSONL(f, spans); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONL reads spans from path.
func LoadJSONL(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadJSONL(bufio.NewReader(f))
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds, per the trace-event format; args carry
// the span identity (hex) and attributes. A map keeps attribute encoding
// sorted — encoding/json marshals map keys in sorted order — so the export
// is byte-deterministic for a given span sequence.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the JSON-object container form, the one Perfetto and
// chrome://tracing load directly.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes spans in Chrome trace-event JSON (loadable in
// Perfetto). Each trace is mapped to its own tid in first-seen order so
// page views render as separate tracks; span identity and attributes land
// in args.
func WriteChrome(w io.Writer, spans []Span) error {
	tids := make(map[TraceID]int)
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for i := range spans {
		s := &spans[i]
		tid, ok := tids[s.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[s.Trace] = tid
		}
		args := make(map[string]string, len(s.Attrs)+2)
		args["trace"] = fmt.Sprintf("%016x", uint64(s.Trace))
		args["span"] = fmt.Sprintf("%016x", uint64(s.ID))
		if s.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", uint64(s.Parent))
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Kind,
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  s.Dur * 1e6,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&file); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return nil
}

// SaveChrome writes the Chrome trace-event form to path.
func SaveChrome(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := WriteChrome(bw, spans); err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	return f.Close()
}
