package estimate

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Stream label for deriving per-row hash seeds inside one sketch. Like
// sketchSiteStream, the value is load-bearing.
const sketchRowStream uint64 = 2

// siteSketchSeed derives one site's sketch seed from the estimator-level
// seed; a pure function of (seed, site), so sites stay independent and the
// whole estimator is reproducible from Config.SketchSeed.
func siteSketchSeed(seed uint64, site int) uint64 {
	return rng.New(seed).Split(sketchSiteStream, uint64(site)).Seed()
}

// Sketch is a count-min sketch over exponentially-decayed counts: depth
// hash rows of width cells, each cell an (EWMA weight, last-update time)
// pair so decay is applied lazily per touch, exactly like accesslog.EWMA.
// Estimates are one-sided — a collision can only inflate a page's weight,
// never hide it — which is the safe direction for a hot-page detector.
// Not safe for concurrent use; the estimator wraps one per site shard.
type Sketch struct {
	halfLife float64
	width    int
	now      float64
	seeds    []uint64  // one hash seed per row
	weight   []float64 // depth*width cells, row-major
	updated  []float64
}

// NewSketch builds a width×depth sketch with the given half-life (seconds)
// and hash seed. Equal arguments give sketches with identical behavior.
func NewSketch(width, depth int, halfLifeSeconds float64, seed uint64) (*Sketch, error) {
	if width <= 0 || depth <= 0 {
		return nil, fmt.Errorf("estimate: sketch dimensions must be positive, got %dx%d", width, depth)
	}
	if halfLifeSeconds <= 0 {
		return nil, fmt.Errorf("estimate: half-life must be positive, got %v", halfLifeSeconds)
	}
	s := &Sketch{
		halfLife: halfLifeSeconds,
		width:    width,
		seeds:    make([]uint64, depth),
		weight:   make([]float64, width*depth),
		updated:  make([]float64, width*depth),
	}
	root := rng.New(seed)
	for r := range s.seeds {
		s.seeds[r] = root.Split(sketchRowStream, uint64(r)).Seed()
	}
	return s, nil
}

// mix64 is the SplitMix64 finalizer, used as the row hash: bijective
// avalanche over (rowSeed XOR key), reduced mod width.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cell returns the flat index of pid's cell in row r.
func (s *Sketch) cell(r int, pid workload.PageID) int {
	return r*s.width + int(mix64(s.seeds[r]^uint64(pid))%uint64(s.width))
}

// decayed returns cell i's weight decayed to s.now.
func (s *Sketch) decayed(i int) float64 {
	w := s.weight[i]
	if w == 0 {
		return 0
	}
	dt := s.now - s.updated[i]
	if dt <= 0 {
		return w
	}
	return w * math.Exp2(-dt/s.halfLife)
}

// Observe records one access to page pid at time t (seconds, monotone
// non-decreasing).
//
//repllint:hotpath — sketch ingest, called per observed request
func (s *Sketch) Observe(pid workload.PageID, t float64) {
	if t > s.now {
		s.now = t
	}
	for r := range s.seeds {
		i := s.cell(r, pid)
		s.weight[i] = s.decayed(i) + 1
		s.updated[i] = s.now
	}
}

// Weight returns pid's estimated decayed weight: the minimum over rows,
// which upper-bounds the true weight (collisions only add).
func (s *Sketch) Weight(pid workload.PageID) float64 {
	min := s.decayed(s.cell(0, pid))
	for r := 1; r < len(s.seeds); r++ {
		if w := s.decayed(s.cell(r, pid)); w < min {
			min = w
		}
	}
	return min
}

// Advance moves the clock forward without observations.
func (s *Sketch) Advance(t float64) {
	if t > s.now {
		s.now = t
	}
}
