package estimate

import (
	"fmt"
	"sort"
)

// DetectorConfig tunes the drift detector. Zero values take the defaults
// noted on each field.
type DetectorConfig struct {
	// TriggerL1 is the L1 distance between the estimated and baseline
	// frequency vectors (both normalized, so the distance lives in [0, 2])
	// at or above which re-planning triggers. Default 0.35.
	TriggerL1 float64
	// ClearL1 is the hysteresis floor: after a trigger the detector stays
	// quiet until the distance drops below ClearL1 (i.e. the plan has been
	// rebuilt, or the burst faded on its own) and only then re-arms.
	// Default TriggerL1 / 2.
	ClearL1 float64
	// TopK is how many top pages the churn signal compares. Default 10,
	// clamped to the vector length.
	TopK int
	// TriggerTopK is the fraction of the current top-K absent from the
	// baseline top-K at or above which re-planning triggers even when the
	// bulk L1 mass hasn't moved — the "breaking news" signature where a
	// handful of pages swap into the hot set. Default 0.5.
	TriggerTopK float64
}

func (c DetectorConfig) normalize() DetectorConfig {
	if c.TriggerL1 <= 0 {
		c.TriggerL1 = 0.35
	}
	if c.ClearL1 <= 0 {
		c.ClearL1 = c.TriggerL1 / 2
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.TriggerTopK <= 0 {
		c.TriggerTopK = 0.5
	}
	return c
}

// Decision is one drift check's outcome.
type Decision struct {
	// L1 is the distance between the current and baseline vectors.
	L1 float64
	// TopKChurn is the fraction of the current top-K pages that are not in
	// the baseline top-K.
	TopKChurn float64
	// Exceeded reports whether either signal is past its trigger level.
	Exceeded bool
	// Trigger reports whether this check should start a re-plan: Exceeded
	// while the detector is armed. Hysteresis clears it on the checks that
	// follow a trigger until the distance falls below ClearL1 or the
	// caller Rebases onto a new plan.
	Trigger bool
}

// Detector compares the estimator's frequency vector against the vector
// the current plan was built from and decides when the divergence is worth
// a re-plan. Hysteresis keeps one sustained burst from triggering a
// re-plan storm: after a trigger the detector disarms until the signal
// clears or the baseline is rebased. Not safe for concurrent use; the
// adapt controller serializes checks.
type Detector struct {
	cfg      DetectorConfig
	baseline []float64
	baseTop  map[int]bool
	armed    bool
}

// NewDetector builds a detector armed against the given baseline vector
// (normally estimate.BaselineVector of the workload the plan came from).
func NewDetector(baseline []float64, cfg DetectorConfig) (*Detector, error) {
	if len(baseline) == 0 {
		return nil, fmt.Errorf("estimate: empty detector baseline")
	}
	d := &Detector{cfg: cfg.normalize(), armed: true}
	d.Rebase(baseline)
	return d, nil
}

// Rebase replaces the baseline (after a re-plan has shipped) and re-arms.
func (d *Detector) Rebase(baseline []float64) {
	d.baseline = append([]float64(nil), baseline...)
	d.baseTop = topSet(baseline, d.cfg.TopK)
	d.armed = true
}

// Check measures current against the baseline. The vectors must have the
// same length and the same normalization (FreqVector/BaselineVector).
func (d *Detector) Check(current []float64) (Decision, error) {
	if len(current) != len(d.baseline) {
		return Decision{}, fmt.Errorf("estimate: detector got %d-page vector, baseline has %d", len(current), len(d.baseline))
	}
	var dec Decision
	for i, c := range current {
		diff := c - d.baseline[i]
		if diff < 0 {
			diff = -diff
		}
		dec.L1 += diff
	}
	curTop := topIndices(current, d.cfg.TopK)
	if len(curTop) > 0 {
		moved := 0
		for _, idx := range curTop {
			if !d.baseTop[idx] {
				moved++
			}
		}
		dec.TopKChurn = float64(moved) / float64(len(curTop))
	}
	dec.Exceeded = dec.L1 >= d.cfg.TriggerL1 || dec.TopKChurn >= d.cfg.TriggerTopK
	dec.Trigger = dec.Exceeded && d.armed
	if dec.Trigger {
		d.armed = false
	} else if !d.armed && dec.L1 < d.cfg.ClearL1 && dec.TopKChurn < d.cfg.TriggerTopK {
		d.armed = true
	}
	return dec, nil
}

// Armed reports whether the next exceeded check would trigger.
func (d *Detector) Armed() bool { return d.armed }

// topIndices returns the indices of the k largest entries of v (ties by
// lower index), at most len(v) of them, skipping zero entries.
func topIndices(v []float64, k int) []int {
	idx := make([]int, 0, len(v))
	for i, x := range v {
		if x > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		xa, xb := v[idx[a]], v[idx[b]]
		if xa != xb { //repllint:allow float-compare — exact-bits tie-break keeps the comparator a strict weak order
			return xa > xb
		}
		return idx[a] < idx[b]
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// topSet is topIndices as a membership set.
func topSet(v []float64, k int) map[int]bool {
	out := make(map[int]bool, k)
	for _, i := range topIndices(v, k) {
		out[i] = true
	}
	return out
}
