// Package estimate is the streaming half of the paper's Section 4.1
// re-planning story: a continuously-updated frequency estimate of what the
// sites are actually serving, and a drift detector that says when the
// estimate has diverged far enough from the plan's assumptions to justify
// re-running the planner.
//
// The paper computes the X/X′ placement once from *estimated* access
// frequencies and concedes that "breaking news" drift makes the plan go
// stale; the §5.1 sensitivity study measures the damage but never closes
// the loop. This package supplies the missing sensor: per-(site, page)
// exponentially-decayed counters (EWMA with a configurable half-life, so
// bursts surface quickly and fade when the story ages) fed by the live
// servers' access-log tap and by the request simulator, plus an optional
// count-min sketch backing store for page populations beyond the paper's
// scale. Snapshots are rendered in sorted page order and are a pure
// function of the observation stream (and the sketch seed), so equal seeds
// and equal request streams yield byte-identical snapshots — the property
// the determinism tests pin and the flash-crowd experiment's
// reproducibility rests on.
//
// Concurrency: the estimator shards state per site, each shard behind its
// own mutex. Distinct sites never contend, matching both the simulator
// (one goroutine per site) and the live cluster (one server per site);
// concurrent requests into the same site serialize on the shard lock.
package estimate

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/accesslog"
	"repro/internal/workload"
)

// Config tunes the estimator.
type Config struct {
	// HalfLife is the EWMA decay half-life in seconds (default 60): an
	// access's weight halves every HalfLife seconds of estimator time.
	HalfLife float64
	// SketchWidth and SketchDepth, when both positive, switch the per-site
	// backing store from an exact per-page map to a count-min sketch of
	// that shape — bounded memory for cardinalities beyond the paper's
	// scale, at the cost of (one-sided) overestimation under collisions.
	SketchWidth, SketchDepth int
	// SketchSeed seeds the sketch's row hash functions; ignored on the
	// exact path. Equal seeds give identical sketches.
	SketchSeed uint64
}

func (c Config) normalize() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = 60
	}
	return c
}

func (c Config) sketched() bool { return c.SketchWidth > 0 && c.SketchDepth > 0 }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.SketchWidth < 0 || c.SketchDepth < 0 {
		return fmt.Errorf("estimate: negative sketch dimensions %dx%d", c.SketchWidth, c.SketchDepth)
	}
	if (c.SketchWidth > 0) != (c.SketchDepth > 0) {
		return fmt.Errorf("estimate: sketch needs both width and depth (got %dx%d)", c.SketchWidth, c.SketchDepth)
	}
	return nil
}

// counter is one site's decayed-count store: the exact EWMA map or the
// count-min sketch. Implementations are not concurrency-safe; the owning
// shard's mutex serializes access.
type counter interface {
	Observe(pid workload.PageID, t float64)
	Advance(t float64)
	Weight(pid workload.PageID) float64
}

// shard is one site's slice of the estimator.
type shard struct {
	mu     sync.Mutex
	pages  []workload.PageID // hosted pages, ascending ID order
	counts counter
}

// Estimator is the streaming frequency estimator: one decayed counter set
// per site, fed by Observe and read by Snapshot. Safe for concurrent use.
type Estimator struct {
	cfg      Config
	numPages int
	sites    []*shard
}

// Stream label for deriving per-site sketch hash seeds from
// Config.SketchSeed. The value is load-bearing (it folds into every row
// seed); renumbering changes every sketch estimate.
const sketchSiteStream uint64 = 1

// New builds an estimator for the workload's site/page universe. The
// workload fixes only the shape (which pages each site hosts); frequencies
// are learned entirely from observations.
func New(w *workload.Workload, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	e := &Estimator{cfg: cfg, numPages: w.NumPages(), sites: make([]*shard, w.NumSites())}
	for i := range w.Sites {
		sh := &shard{pages: append([]workload.PageID(nil), w.Sites[i].Pages...)}
		if cfg.sketched() {
			sk, err := NewSketch(cfg.SketchWidth, cfg.SketchDepth, cfg.HalfLife, siteSketchSeed(cfg.SketchSeed, i))
			if err != nil {
				return nil, err
			}
			sh.counts = sk
		} else {
			ew, err := accesslog.NewEWMA(cfg.HalfLife)
			if err != nil {
				return nil, err
			}
			sh.counts = ew
		}
		e.sites[i] = sh
	}
	return e, nil
}

// Observe records one access to page pid at site i at time t (seconds on
// the caller's clock: the cluster's uptime on the live path, the virtual
// clock in the simulator). Timestamps must be non-decreasing per site;
// out-of-range sites or pages are ignored (a malformed request must not
// poison the estimate). Safe for concurrent use.
//
//repllint:hotpath — estimator ingest, called per observed request
func (e *Estimator) Observe(site workload.SiteID, pid workload.PageID, t float64) {
	if int(site) >= len(e.sites) || site < 0 || pid < 0 || int(pid) >= e.numPages {
		return
	}
	sh := e.sites[site]
	sh.mu.Lock()
	sh.counts.Observe(pid, t)
	sh.mu.Unlock()
}

// PageWeight is one page's decayed access weight in a snapshot.
type PageWeight struct {
	Page   workload.PageID `json:"page"`
	Weight float64         `json:"weight"`
}

// SiteEstimate is one site's snapshot slice: every hosted page in
// ascending ID order, including never-observed pages at weight 0, so the
// output shape is fixed by the workload and two equal states encode to
// identical bytes.
type SiteEstimate struct {
	Site  workload.SiteID `json:"site"`
	Pages []PageWeight    `json:"pages"`
}

// Snapshot is a point-in-time copy of the estimate.
type Snapshot struct {
	At    float64        `json:"at"`
	Sites []SiteEstimate `json:"sites"`
}

// Snapshot advances every site's decay clock to t and copies the decayed
// weights out, sites ascending, pages in ID order within each site.
func (e *Estimator) Snapshot(t float64) *Snapshot {
	out := &Snapshot{At: t, Sites: make([]SiteEstimate, len(e.sites))}
	for i, sh := range e.sites {
		se := SiteEstimate{Site: workload.SiteID(i), Pages: make([]PageWeight, len(sh.pages))}
		sh.mu.Lock()
		sh.counts.Advance(t)
		for idx, pid := range sh.pages {
			se.Pages[idx] = PageWeight{Page: pid, Weight: sh.counts.Weight(pid)}
		}
		sh.mu.Unlock()
		out.Sites[i] = se
	}
	return out
}

// Encode renders the snapshot as indented JSON. Two equal snapshots encode
// to identical bytes — the determinism property the CI adapt stage pins.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Counts rounds the snapshot into accesslog.Counts (weights scaled by 1000
// to keep precision through the integer interface), the input
// accesslog.EstimateWorkload consumes. Pages below the retention floor are
// dropped, exactly like accesslog.EWMA.Snapshot.
func (s *Snapshot) Counts() accesslog.Counts {
	out := make(accesslog.Counts)
	for _, se := range s.Sites {
		for _, pw := range se.Pages {
			if pw.Weight > 1e-9 {
				out[pw.Page] = int64(pw.Weight * 1000)
			}
		}
	}
	return out
}

// EstimateWorkload re-estimates w's page frequencies from the snapshot:
// each page's frequency becomes its Laplace-smoothed share of its site's
// observed weight, scaled to the site's aggregate rate (via
// accesslog.EstimateWorkload). The returned workload is what the adaptive
// loop re-plans against.
func (s *Snapshot) EstimateWorkload(w *workload.Workload) (*workload.Workload, error) {
	return accesslog.EstimateWorkload(w, s.Counts())
}

// FreqVector renders the snapshot as a global page-share vector: within
// each site weights are normalized to sum 1 (a site with nothing observed
// contributes zeros), then divided by the site count so the whole vector
// sums to ≈1. The same normalization BaselineVector applies to a planned
// workload, making the two directly comparable inputs for the Detector.
func (s *Snapshot) FreqVector(numPages int) []float64 {
	out := make([]float64, numPages)
	if len(s.Sites) == 0 {
		return out
	}
	inv := 1 / float64(len(s.Sites))
	for _, se := range s.Sites {
		var total float64
		for _, pw := range se.Pages {
			total += pw.Weight
		}
		if total <= 0 {
			continue
		}
		for _, pw := range se.Pages {
			if int(pw.Page) < numPages {
				out[pw.Page] = pw.Weight / total * inv
			}
		}
	}
	return out
}

// BaselineVector renders a workload's planned frequencies with the same
// normalization as Snapshot.FreqVector — the vector the current plan was
// built from, and the Detector's reference point.
func BaselineVector(w *workload.Workload) []float64 {
	out := make([]float64, w.NumPages())
	if w.NumSites() == 0 {
		return out
	}
	inv := 1 / float64(w.NumSites())
	for i := range w.Sites {
		var total float64
		for _, pid := range w.Sites[i].Pages {
			total += float64(w.Pages[pid].Freq)
		}
		if total <= 0 {
			continue
		}
		for _, pid := range w.Sites[i].Pages {
			out[pid] = float64(w.Pages[pid].Freq) / total * inv
		}
	}
	return out
}
