package estimate

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/accesslog"
	"repro/internal/rng"
	"repro/internal/workload"
)

func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.SmallConfig(), 31)
}

// observation is one (site, page, t) access event.
type observation struct {
	site workload.SiteID
	page workload.PageID
	t    float64
}

// drawObservations samples a deterministic request stream from the
// workload's true frequencies: perSite requests per site, timestamps
// spread uniformly over window seconds.
func drawObservations(w *workload.Workload, perSite int, window float64, seed uint64) []observation {
	s := rng.New(seed)
	var obs []observation
	for i := range w.Sites {
		pages := w.Sites[i].Pages
		cum := make([]float64, len(pages))
		total := 0.0
		for idx, pid := range pages {
			total += float64(w.Pages[pid].Freq)
			cum[idx] = total
		}
		t := 0.0
		for n := 0; n < perSite; n++ {
			u := s.Float64() * total
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			t += window / float64(perSite)
			obs = append(obs, observation{workload.SiteID(i), pages[lo], t})
		}
	}
	return obs
}

func feed(e *Estimator, obs []observation) {
	for _, o := range obs {
		e.Observe(o.site, o.page, o.t)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{SketchWidth: -1},
		{SketchDepth: -1},
		{SketchWidth: 64}, // depth missing
		{SketchDepth: 4},  // width missing
		{SketchWidth: 0, SketchDepth: 3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
	if err := (Config{SketchWidth: 64, SketchDepth: 4}).Validate(); err != nil {
		t.Errorf("valid sketch config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("exact config rejected: %v", err)
	}
}

func TestEstimatorTracksObservedShares(t *testing.T) {
	w := testWorkload(t)
	for _, cfg := range []Config{
		{HalfLife: 1e9}, // effectively no decay: weights ≈ raw counts
		{HalfLife: 1e9, SketchWidth: 4096, SketchDepth: 4, SketchSeed: 7},
	} {
		name := "exact"
		if cfg.sketched() {
			name = "sketch"
		}
		t.Run(name, func(t *testing.T) {
			e, err := New(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			obs := drawObservations(w, 20000, 100, 7)
			feed(e, obs)
			got := e.Snapshot(100).FreqVector(w.NumPages())
			want := BaselineVector(w)
			l1 := 0.0
			for i := range got {
				l1 += math.Abs(got[i] - want[i])
			}
			if l1 > 0.25 {
				t.Errorf("estimated shares diverge from true frequencies: L1 = %.3f", l1)
			}
		})
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	// Same seed + same request stream ⇒ byte-identical snapshots, on both
	// the exact and the sketch path.
	w := testWorkload(t)
	for _, cfg := range []Config{
		{HalfLife: 30},
		{HalfLife: 30, SketchWidth: 512, SketchDepth: 4, SketchSeed: 99},
	} {
		name := "exact"
		if cfg.sketched() {
			name = "sketch"
		}
		t.Run(name, func(t *testing.T) {
			obs := drawObservations(w, 5000, 200, 11)
			var encs [][]byte
			for rep := 0; rep < 2; rep++ {
				e, err := New(w, cfg)
				if err != nil {
					t.Fatal(err)
				}
				feed(e, obs)
				enc, err := e.Snapshot(200).Encode()
				if err != nil {
					t.Fatal(err)
				}
				encs = append(encs, enc)
			}
			if !bytes.Equal(encs[0], encs[1]) {
				t.Fatal("same seed + same request stream produced different snapshot bytes")
			}
		})
	}
}

func TestEstimatorConcurrentObserve(t *testing.T) {
	// Concurrent writers across sites and within one site. Within a batch
	// every observation carries the same timestamp, so weight updates
	// commute and the result must equal sequential ingestion exactly.
	w := testWorkload(t)
	build := func() *Estimator {
		e, err := New(w, Config{HalfLife: 60})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	obs := drawObservations(w, 2000, 0, 13) // window 0 ⇒ equal timestamps per site... spread below
	for i := range obs {
		obs[i].t = float64(1 + i%5) // five fixed batch timestamps, reused across goroutines
	}
	// Group by timestamp so concurrent ingestion never interleaves
	// different times at one site out of order.
	batches := make(map[float64][]observation)
	for _, o := range obs {
		batches[o.t] = append(batches[o.t], o)
	}

	seq := build()
	for bt := 1; bt <= 5; bt++ {
		for _, o := range batches[float64(bt)] {
			seq.Observe(o.site, o.page, o.t)
		}
	}

	conc := build()
	for bt := 1; bt <= 5; bt++ {
		batch := batches[float64(bt)]
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(batch); i += 8 {
					conc.Observe(batch[i].site, batch[i].page, batch[i].t)
				}
			}(g)
		}
		wg.Wait()
	}

	a, err := seq.Snapshot(6).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := conc.Snapshot(6).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("concurrent ingestion diverged from sequential ingestion")
	}
}

func TestEstimatorIgnoresOutOfRange(t *testing.T) {
	w := testWorkload(t)
	e, err := New(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(-1, 0, 1)
	e.Observe(workload.SiteID(w.NumSites()), 0, 1)
	e.Observe(0, -1, 1)
	e.Observe(0, workload.PageID(w.NumPages()), 1)
	if got := len(e.Snapshot(1).Counts()); got != 0 {
		t.Fatalf("out-of-range observations leaked into counts: %d entries", got)
	}
}

func TestSketchOneSidedAndClose(t *testing.T) {
	// The sketch may only overestimate (collisions add weight, never
	// remove it), and with a generous width it should track the exact
	// EWMA closely.
	sk, err := NewSketch(8192, 4, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := accesslog.NewEWMA(60)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	tnow := 0.0
	for n := 0; n < 20000; n++ {
		pid := workload.PageID(s.IntN(500))
		tnow += 0.01
		sk.Observe(pid, tnow)
		ref.Observe(pid, tnow)
	}
	for pid := workload.PageID(0); pid < 500; pid++ {
		want := ref.Weight(pid)
		got := sk.Weight(pid)
		if got < want-1e-6 {
			t.Fatalf("sketch underestimated page %d: got %g want ≥ %g", pid, got, want)
		}
		if got > want*1.5+1 {
			t.Errorf("sketch way over on page %d: got %g want ≈ %g", pid, got, want)
		}
	}
}

func TestDetectorHysteresis(t *testing.T) {
	base := []float64{0.5, 0.3, 0.2, 0, 0}
	d, err := NewDetector(base, DetectorConfig{TriggerL1: 0.4, ClearL1: 0.1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	// In-tolerance check: no trigger, stays armed.
	dec, err := d.Check([]float64{0.48, 0.32, 0.2, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trigger || !d.Armed() {
		t.Fatalf("small drift should not trigger: %+v", dec)
	}
	// Big shift: triggers once...
	shifted := []float64{0, 0, 0.2, 0.5, 0.3}
	dec, err = d.Check(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Trigger {
		t.Fatalf("large drift should trigger: %+v", dec)
	}
	// ...and not again while the signal persists (hysteresis).
	dec, err = d.Check(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trigger {
		t.Fatalf("sustained drift re-triggered without clearing: %+v", dec)
	}
	if !dec.Exceeded {
		t.Fatalf("sustained drift should still report Exceeded: %+v", dec)
	}
	// Signal clears below ClearL1 → re-arms → next burst triggers again.
	if dec, err = d.Check(base); err != nil || dec.Trigger {
		t.Fatalf("clearing check misbehaved: %+v, %v", dec, err)
	}
	if !d.Armed() {
		t.Fatal("detector did not re-arm after the signal cleared")
	}
	dec, err = d.Check(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Trigger {
		t.Fatalf("re-armed detector should trigger on the next burst: %+v", dec)
	}

	// Rebase onto the shifted vector: the same traffic is now in-plan.
	d.Rebase(shifted)
	dec, err = d.Check(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trigger || dec.Exceeded {
		t.Fatalf("rebased detector should be quiet on its own baseline: %+v", dec)
	}
}

func TestDetectorTopKChurn(t *testing.T) {
	// Mass moves between a few head pages only: L1 stays moderate but the
	// top-k membership churns, which must trigger on its own.
	base := make([]float64, 100)
	cur := make([]float64, 100)
	for i := 0; i < 100; i++ {
		base[i] = 0.008
		cur[i] = 0.008
	}
	for i := 0; i < 5; i++ {
		base[i] += 0.04   // head pages 0-4
		cur[i+50] += 0.04 // head moved to 50-54
	}
	d, err := NewDetector(base, DetectorConfig{TriggerL1: 10 /* unreachable */, TopK: 5, TriggerTopK: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := d.Check(cur)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TopKChurn < 0.99 {
		t.Fatalf("expected full top-k churn, got %.2f", dec.TopKChurn)
	}
	if !dec.Trigger {
		t.Fatalf("top-k churn should trigger independently of L1: %+v", dec)
	}
}

func TestDetectorLengthMismatch(t *testing.T) {
	d, err := NewDetector([]float64{1, 0}, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Check([]float64{1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := NewDetector(nil, DetectorConfig{}); err == nil {
		t.Fatal("empty baseline not rejected")
	}
}

func TestSnapshotEstimateWorkload(t *testing.T) {
	w := testWorkload(t)
	e, err := New(w, Config{HalfLife: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	feed(e, drawObservations(w, 10000, 100, 17))
	est, err := e.Snapshot(100).EstimateWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-site aggregate rate is preserved by the re-estimate.
	for i := range est.Sites {
		sum := 0.0
		for _, pid := range est.Sites[i].Pages {
			sum += float64(est.Pages[pid].Freq)
		}
		rate := float64(w.Config.PageRatePerSite)
		if math.Abs(sum-rate) > rate*1e-6 {
			t.Fatalf("site %d rate %.3f, want %.3f", i, sum, rate)
		}
	}
}

func TestFreqVectorSumsToOne(t *testing.T) {
	w := testWorkload(t)
	e, err := New(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	feed(e, drawObservations(w, 1000, 10, 3))
	for name, v := range map[string][]float64{
		"estimated": e.Snapshot(10).FreqVector(w.NumPages()),
		"baseline":  BaselineVector(w),
	} {
		sum := 0.0
		for _, x := range v {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s vector sums to %.9f, want 1", name, sum)
		}
	}
}
