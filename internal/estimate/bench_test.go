package estimate

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// benchObservations pre-draws a request stream so the ingest benchmarks
// measure Observe alone, not the sampling.
func benchObservations(b *testing.B, w *workload.Workload, n int) []observation {
	b.Helper()
	obs := drawObservations(w, (n+w.NumSites()-1)/w.NumSites(), float64(n)/100, 1)
	if len(obs) < n {
		b.Fatalf("drew %d observations, need %d", len(obs), n)
	}
	return obs[:n]
}

// BenchmarkEWMAIngest measures one Observe on the exact per-page path.
func BenchmarkEWMAIngest(b *testing.B) {
	w := workload.MustGenerate(workload.SmallConfig(), 31)
	e, err := New(w, Config{HalfLife: 60})
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservations(b, w, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i&(1<<14-1)]
		e.Observe(o.site, o.page, o.t)
	}
}

// BenchmarkSketchIngest measures one Observe on the count-min path
// (depth-4 hashing plus per-cell decay).
func BenchmarkSketchIngest(b *testing.B) {
	w := workload.MustGenerate(workload.SmallConfig(), 31)
	e, err := New(w, Config{HalfLife: 60, SketchWidth: 1024, SketchDepth: 4, SketchSeed: 7})
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservations(b, w, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs[i&(1<<14-1)]
		e.Observe(o.site, o.page, o.t)
	}
}

// BenchmarkDriftCheck measures one Detector.Check over a paper-scale
// frequency vector (L1 sweep plus top-k extraction).
func BenchmarkDriftCheck(b *testing.B) {
	const pages = 3000
	base := make([]float64, pages)
	cur := make([]float64, pages)
	s := rng.New(9)
	for i := range base {
		base[i] = s.Float64()
		cur[i] = base[i] * s.Uniform(0.8, 1.2)
	}
	d, err := NewDetector(base, DetectorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Check(cur); err != nil {
			b.Fatal(err)
		}
	}
}
