package webserve

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/workload"
)

// TestPayloadHeaderRoundTrip pins the codec on representative coordinates,
// including the repository sentinel and the widest values the workloads
// produce.
func TestPayloadHeaderRoundTrip(t *testing.T) {
	cases := []PayloadHeader{
		{Object: 0, Source: RepoSource, Seed: 0, Length: PayloadHeaderLen, Sum: 0},
		{Object: 116, Source: 2, Seed: 66, Length: 49152, Sum: 0x89abcdef},
		{Object: 9999999, Source: 127, Seed: ^uint64(0), Length: 1 << 33, Sum: 1},
	}
	for _, h := range cases {
		enc := EncodePayloadHeader(h)
		if len(enc) != PayloadHeaderLen || enc[PayloadHeaderLen-1] != '\n' {
			t.Fatalf("%+v: bad frame: %d bytes, last %q", h, len(enc), enc[len(enc)-1])
		}
		got, err := DecodePayloadHeader(enc)
		if err != nil {
			t.Fatalf("%+v: decode: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip lost information: %+v vs %+v", h, got)
		}
	}
}

// TestVerifyObjectFromProvenance pins the scrubber's stricter check: a
// payload that checksums clean but claims another source is still a finding
// — site 0's store holding the repository's copy is mis-replication, not
// integrity.
func TestVerifyObjectFromProvenance(t *testing.T) {
	w := tinyWorkload(t)
	const k = workload.ObjectID(3)

	site0, err := io.ReadAll(ObjectReader(w, 0, k))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := io.ReadAll(ObjectReader(w, RepoSource, k))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(site0, repo) {
		t.Fatal("site and repository copies are identical — provenance is unprovable")
	}

	// Both copies are genuine to the any-source check…
	if err := VerifyObject(w, k, site0); err != nil {
		t.Fatal(err)
	}
	if err := VerifyObject(w, k, repo); err != nil {
		t.Fatal(err)
	}
	// … but only the right one passes the provenance check.
	if err := VerifyObjectFrom(w, 0, k, site0); err != nil {
		t.Fatal(err)
	}
	if err := VerifyObjectFrom(w, 0, k, repo); err == nil {
		t.Fatal("repository copy accepted as site 0's replica")
	}
	if err := VerifyObjectFrom(w, 1, k, site0); err == nil {
		t.Fatal("site 0 copy accepted as site 1's replica")
	}
}

// TestVerifyRejectsForgedChecksum pins the byte-compare layer: a body whose
// declared CRC matches its (tampered) bytes still fails, because the bytes
// are not the keyed stream.
func TestVerifyRejectsForgedChecksum(t *testing.T) {
	w := tinyWorkload(t)
	const k = workload.ObjectID(0)
	data, err := io.ReadAll(ObjectReader(w, RepoSource, k))
	if err != nil {
		t.Fatal(err)
	}
	// Forge: flip one body byte, then rewrite the header so length and CRC
	// agree with the tampered body.
	data[len(data)-1] ^= 0xFF
	h, err := DecodePayloadHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	h.Sum = bodyCRC(data[PayloadHeaderLen:], int64(len(data)-PayloadHeaderLen))
	copy(data, EncodePayloadHeader(h))
	if err := VerifyObject(w, k, data); err == nil {
		t.Fatal("forged checksum pair accepted")
	}
}
