package webserve

import (
	"testing"

	"repro/internal/accesslog"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestAdaptiveReplanLoop exercises the paper's full operational cycle
// (Sections 2 + 4.1) over the real HTTP stack: serve traffic, collect
// access statistics at the local servers, estimate frequencies, re-plan,
// and apply the new placement live. The check: after traffic shifts to a
// new hot set, the re-planned placement stores the newly-hot pages'
// objects at the site while the stale plan (built for the old traffic,
// under tight storage) does not.
func TestAdaptiveReplanLoop(t *testing.T) {
	w := tinyWorkload(t)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(66))
	if err != nil {
		t.Fatal(err)
	}

	// Tight storage so placements are selective.
	budget := model.FullBudgets(w).Scale(w, 0.3, 1)
	env, err := model.NewEnv(w, est, budget)
	if err != nil {
		t.Fatal(err)
	}
	stale, _, err := corePlan(env)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := StartCluster(w, stale)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client := NewClient(w)

	// Drifted traffic: hammer the pages the stale plan considered cold.
	// Pick the site-0 pages with the lowest original frequency.
	site0 := cluster.Sites[0]
	pages := w.Sites[0].Pages
	var coldest workload.PageID = pages[0]
	for _, pid := range pages {
		if w.Pages[pid].Freq < w.Pages[coldest].Freq {
			coldest = pid
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := client.FetchPage(cluster.PageURL(coldest), coldest); err != nil {
			t.Fatal(err)
		}
	}
	// A little background traffic on everything else.
	for _, pid := range pages {
		if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
			t.Fatal(err)
		}
	}

	// Collect statistics and estimate the new workload.
	counts := accesslog.Counts(site0.AccessCounts())
	observed, err := accesslog.EstimateWorkload(w, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !observed.Pages[coldest].Hot {
		t.Fatalf("page %d drew %d of %d requests yet is not estimated hot",
			coldest, counts[coldest], counts.Total())
	}

	// Re-plan against the estimated frequencies and apply it live.
	envNew, err := model.NewEnv(observed, est, budget)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := corePlan(envNew)
	if err != nil {
		t.Fatal(err)
	}
	if err := site0.ApplyPlacement(fresh); err != nil {
		t.Fatal(err)
	}

	// The freshly-hot page must now be served better than under the stale
	// plan: more of its compulsory objects local.
	localUnder := func(p *model.Placement) int {
		n := 0
		for idx := range w.Pages[coldest].Compulsory {
			if p.CompLocal(coldest, idx) {
				n++
			}
		}
		return n
	}
	if localUnder(fresh) < localUnder(stale) {
		t.Errorf("re-planning made the hot page worse: %d local vs %d",
			localUnder(fresh), localUnder(stale))
	}
	// And the cluster must actually serve it that way.
	res, err := client.FetchPage(cluster.PageURL(coldest), coldest)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalChain.Objects != localUnder(fresh) {
		t.Errorf("cluster serves %d local objects, placement says %d",
			res.LocalChain.Objects, localUnder(fresh))
	}
}
