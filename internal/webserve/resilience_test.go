package webserve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// quickOpts returns client options tuned for tests: fast timeouts and
// backoffs so failure paths resolve in milliseconds.
func quickOpts() ClientOptions {
	return ClientOptions{
		Timeout:     2 * time.Second,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

func TestClientTimeoutOnStalledServer(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		<-release // hold the request open until the test ends
	}))
	defer stalled.Close()
	defer close(release)

	opts := quickOpts()
	opts.Timeout = 150 * time.Millisecond
	opts.Retries = -1
	c := NewClientOptions(tinyWorkload(t), opts)

	start := time.Now()
	_, err := c.GetDoc(stalled.URL + "/page/0")
	if err == nil {
		t.Fatal("request against a stalled server returned no error")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("timeout took %v — the per-request deadline is not wired", took)
	}
}

func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient(tinyWorkload(t))
	if c.Options().Timeout != DefaultClientOptions().Timeout {
		t.Fatalf("NewClient timeout = %v, want default %v", c.Options().Timeout, DefaultClientOptions().Timeout)
	}
	if c.http.Timeout == 0 {
		t.Fatal("underlying http.Client has no timeout — a stalled server would hang FetchPage forever")
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(rw, "transient", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(rw, "content")
	}))
	defer flaky.Close()

	c := NewClientOptions(tinyWorkload(t), quickOpts())
	data, _, retries, err := c.getRetry(context.Background(), flaky.URL+"/doc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "content" {
		t.Fatalf("got %q", data)
	}
	if retries != 2 || calls.Load() != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 and 3", retries, calls.Load())
	}
}

func TestClientDoesNotRetry404(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		http.NotFound(rw, req)
	}))
	defer srv.Close()

	c := NewClientOptions(tinyWorkload(t), quickOpts())
	if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/mo/0", nil, nil); err == nil {
		t.Fatal("404 did not error")
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was attempted %d times; authoritative misses must not retry", calls.Load())
	}
}

func TestBackoffDeterminismAndBounds(t *testing.T) {
	opts := DefaultClientOptions()
	opts.JitterSeed = 7
	a := NewClientOptions(tinyWorkload(t), opts)
	b := NewClientOptions(tinyWorkload(t), opts)
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: identically-seeded backoffs differ (%v vs %v)", attempt, da, db)
		}
		if da < opts.BackoffBase/2 || da > opts.BackoffMax {
			t.Fatalf("attempt %d: backoff %v outside [base/2, max]", attempt, da)
		}
	}
}

func TestFetchMOFallsBackToRepository(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	c := cluster.Client(quickOpts())
	c.Verify = true
	k := w.Sites[0].Objects[0]
	// A dead host: connection refused immediately, then repository fallback.
	data, _, fellBack, err := c.fetchMO(context.Background(), "http://127.0.0.1:1"+htmlrefs.MOPath(k), k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatal("fallback not reported")
	}
	if err := VerifyObject(w, k, data); err != nil {
		t.Fatal(err)
	}
}

// TestStaleDocumentFallback replays the plan-refresh race: a client holds a
// document rewritten under the old placement and asks the site for an
// object it no longer stores. The 404 is authoritative — and the resilient
// client degrades it to the repository instead of failing the download.
func TestStaleDocumentFallback(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	c := cluster.Client(quickOpts())
	c.Verify = true
	pid := w.Sites[0].Pages[0]
	doc, err := c.GetDoc(cluster.PageURL(pid)) // rewritten: everything local
	if err != nil {
		t.Fatal(err)
	}
	// The plan refresh drops every replica from site 0.
	if err := cluster.Sites[0].ApplyPlacement(model.AllRemote(w)); err != nil {
		t.Fatal(err)
	}
	for _, r := range htmlrefs.ParseRefs(doc) {
		if r.Optional {
			continue
		}
		if !strings.HasPrefix(string(doc[r.Start:r.End]), cluster.SiteBases[0]) {
			t.Fatalf("stale doc ref %q not local", doc[r.Start:r.End])
		}
		data, err := c.FetchObject(doc, r)
		if err != nil {
			t.Fatalf("stale-document fetch failed instead of degrading: %v", err)
		}
		if err := VerifyObject(w, r.Object, data); err != nil {
			t.Fatal(err)
		}
		break
	}
}

// TestFullSiteOutageAllPagesComplete is the PR's acceptance scenario: with
// a fault plan taking site 0 fully out, every page of the workload still
// downloads successfully — site-0 pages via the repository's master copy
// (flagged degraded), everyone else untouched.
func TestFullSiteOutageAllPagesComplete(t *testing.T) {
	w := tinyWorkload(t)
	p := plannedPlacement(t, w)
	plan := &faults.Plan{Seed: 1, Sites: make([]faults.Spec, w.NumSites())}
	plan.Sites[0] = faults.FullOutage()
	cluster, err := StartClusterOptions(w, p, ClusterOptions{Metrics: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client(quickOpts())
	client.Verify = true
	var degraded int
	for j := range w.Pages {
		pid := workload.PageID(j)
		res, err := client.FetchPage(cluster.PageURL(pid), pid)
		if err != nil {
			t.Fatalf("page %d (site %d) failed despite repository fallback: %v", pid, w.Pages[pid].Site, err)
		}
		wantComp := len(w.Pages[pid].Compulsory)
		if got := res.LocalChain.Objects + res.RemoteChain.Objects; got != wantComp {
			t.Fatalf("page %d delivered %d objects, want %d", pid, got, wantComp)
		}
		if w.Pages[pid].Site == 0 {
			if !res.DegradedHTML || !res.Degraded() {
				t.Fatalf("page %d on the dead site not flagged degraded: %+v", pid, res)
			}
			if res.LocalChain.Objects != 0 {
				t.Fatalf("page %d on the dead site claims %d local objects", pid, res.LocalChain.Objects)
			}
			degraded++
		} else if res.DegradedHTML {
			t.Fatalf("page %d on a healthy site flagged degraded", pid)
		}
	}
	if degraded == 0 {
		t.Fatal("site 0 hosts no pages — the outage scenario tested nothing")
	}
	if got := cluster.Metrics.Counter("client.degraded_pages").Value(); got != int64(degraded) {
		t.Errorf("telemetry degraded_pages = %d, want %d", got, degraded)
	}
	if cluster.Repo.PageRequests() < int64(degraded) {
		t.Errorf("repository served %d master-copy pages, want ≥ %d", cluster.Repo.PageRequests(), degraded)
	}
}

func TestRepositoryMasterCopy(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	pid := w.Sites[0].Pages[0]
	resp, err := http.Get(cluster.RepoBase + htmlrefs.PagePath(pid))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("master copy: %s, err=%v", resp.Status, err)
	}
	refs := htmlrefs.ParseRefs(doc)
	if len(refs) == 0 {
		t.Fatal("master copy parsed no references")
	}
	for _, r := range refs {
		if url := string(doc[r.Start:r.End]); !strings.HasPrefix(url, cluster.RepoBase) {
			t.Fatalf("master-copy reference %q does not point at the repository", url)
		}
	}
	if cluster.Repo.PageRequests() != 1 {
		t.Errorf("PageRequests = %d, want 1", cluster.Repo.PageRequests())
	}
}

func TestHealthzEverywhere(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	bases := append([]string{cluster.RepoBase}, cluster.SiteBases...)
	for _, base := range bases {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("%s/healthz: %v", base, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
			t.Fatalf("%s/healthz: %s %q", base, resp.Status, body)
		}
	}
}

func TestKillAndRestartSite(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	pid := w.Sites[0].Pages[0]
	client := cluster.Client(quickOpts())
	client.Verify = true

	if err := cluster.KillSite(0); err != nil {
		t.Fatal(err)
	}
	if !cluster.SiteDown(0) {
		t.Fatal("killed site not reported down")
	}
	if _, err := http.Get(cluster.SiteBases[0] + "/healthz"); err == nil {
		t.Fatal("killed site still answers health checks")
	}
	// The page still completes, degraded through the repository.
	res, err := client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatalf("page on killed site failed: %v", err)
	}
	if !res.DegradedHTML {
		t.Fatal("page served by a killed site not flagged degraded")
	}

	if err := cluster.RestartSite(0); err != nil {
		t.Fatal(err)
	}
	if cluster.SiteDown(0) {
		t.Fatal("restarted site reported down")
	}
	res, err = client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("restarted site still serving degraded: %+v", res)
	}
	if err := cluster.KillSite(5555); err == nil {
		t.Error("KillSite accepted an out-of-range site")
	}
	if err := cluster.RestartSite(0); err == nil {
		t.Error("RestartSite accepted a running site")
	}
}

// TestGracefulShutdownDrains starts a large transfer, then closes the
// cluster mid-body: the graceful drain must let the response complete
// instead of cutting it, which is exactly what the old hard Close did.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 6, 10
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 120, 40, 60
	// One big size class so the transfer outlives socket buffering.
	cfg.MOClasses = []workload.SizeClass{{Frac: 1, Lo: 4 * units.MB, Hi: 6 * units.MB}}
	w := workload.MustGenerate(cfg, 66)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}

	k := w.Sites[0].Objects[0]
	resp, err := http.Get(cluster.SiteBases[0] + htmlrefs.MOPath(k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read a little, then shut down while the rest is in flight.
	head := make([]byte, 64*1024)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- cluster.Close() }()

	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("in-flight body cut during shutdown: %v", err)
	}
	if got := int64(len(head) + len(rest)); got != int64(w.ObjectSize(k)) {
		t.Fatalf("drained %d bytes, want %d", got, w.ObjectSize(k))
	}
	if err := <-closed; err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if err := VerifyObject(w, k, append(head, rest...)); err != nil {
		t.Fatal(err)
	}
}

// TestWriteErrorCounters uses the truncation fault — which cuts the
// handler's io.Copy mid-body — to assert write failures are counted rather
// than silently ignored.
func TestWriteErrorCounters(t *testing.T) {
	w := tinyWorkload(t)
	plan := &faults.Plan{Seed: 3, Sites: make([]faults.Spec, w.NumSites())}
	plan.Sites[0] = faults.Spec{TruncateRate: 1}
	cluster, err := StartClusterOptions(w, model.AllLocal(w), ClusterOptions{Metrics: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	k := w.Sites[0].Objects[0]
	resp, err := http.Get(cluster.SiteBases[0] + htmlrefs.MOPath(k))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := cluster.Metrics.Counter("site.0.write_errors").Value(); got == 0 {
		t.Fatal("truncated transfer did not count a write error")
	}
	if got := cluster.Metrics.Counter("faults.site.0.injected_truncations").Value(); got == 0 {
		t.Fatal("injected truncation not counted")
	}
}

// TestChaosClusterSurvives runs concurrent resilient clients against a
// cluster under a moderate generated fault plan: every fetch must succeed
// (retried or degraded), race-clean.
func TestChaosClusterSurvives(t *testing.T) {
	w := tinyWorkload(t)
	p := plannedPlacement(t, w)
	cfg := faults.DefaultPlanConfig()
	cfg.MaxLatency = 2 * time.Millisecond // keep the test fast
	cfg.OutageProb = 0                    // rate faults only; outages tested elsewhere
	plan, err := faults.Generate(cfg, w.NumSites(), 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := StartClusterOptions(w, p, ClusterOptions{Metrics: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	var retries atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := quickOpts()
			opts.Retries = 4
			opts.JitterSeed = uint64(g)
			client := cluster.Client(opts)
			client.Verify = true
			site := g % w.NumSites()
			for i := 0; i < 5; i++ {
				pid := w.Sites[site].Pages[i%len(w.Sites[site].Pages)]
				res, err := client.FetchPage(cluster.PageURL(pid), pid)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d page %d: %w", g, pid, err)
					return
				}
				retries.Add(int64(res.Retries))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := cluster.Metrics.Snapshot()
	_ = snap // counters exist; the headline assertion is zero failed fetches
}
