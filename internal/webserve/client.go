package webserve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/htmlrefs"
	"repro/internal/workload"
)

// PageResult reports one client page download.
type PageResult struct {
	Page         workload.PageID
	Elapsed      time.Duration
	HTMLBytes    int64
	LocalChain   ChainResult // objects fetched from the local server
	RemoteChain  ChainResult // objects fetched from the repository
	OptionalRefs []htmlrefs.Ref
}

// ChainResult summarizes one parallel download chain.
type ChainResult struct {
	Objects int
	Bytes   int64
	Elapsed time.Duration
}

// Client downloads pages the way the paper's browser model does: the HTML
// first, then the embedded (compulsory) objects split by host into two
// chains fetched concurrently — one persistent connection per host, objects
// pipelined sequentially on each — with the page time being the max of the
// chains. Optional links are returned, not fetched (the user may request
// them separately via FetchObject).
type Client struct {
	w    *workload.Workload
	http *http.Client
	// Verify makes the client check every object's synthetic content.
	Verify bool
}

// NewClient builds a client for the workload.
func NewClient(w *workload.Workload) *Client {
	return &Client{
		w: w,
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
			},
		},
	}
}

// get fetches a URL fully.
func (c *Client) get(url string) ([]byte, error) {
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webserve: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// hostOf extracts scheme://host of a URL (everything before the path).
func hostOf(url string) string {
	idx := strings.Index(url, "://")
	if idx < 0 {
		return ""
	}
	rest := url[idx+3:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return url
	}
	return url[:idx+3+slash]
}

// FetchPage downloads page j from pageURL: the HTML, then every embedded
// object grouped by host and fetched in per-host chains concurrently.
func (c *Client) FetchPage(pageURL string, j workload.PageID) (*PageResult, error) {
	start := time.Now()
	doc, err := c.get(pageURL)
	if err != nil {
		return nil, err
	}
	res := &PageResult{Page: j, HTMLBytes: int64(len(doc))}

	refs := htmlrefs.ParseRefs(doc)
	chains := map[string][]htmlrefs.Ref{}
	for _, r := range refs {
		if r.Optional {
			// Remember where the link points for FetchObject callers.
			res.OptionalRefs = append(res.OptionalRefs, r)
			continue
		}
		url := string(doc[r.Start:r.End])
		chains[hostOf(url)] = append(chains[hostOf(url)], r)
	}

	pageHost := hostOf(pageURL)
	type chainOut struct {
		host string
		res  ChainResult
		err  error
	}
	hosts := make([]string, 0, len(chains))
	for h := range chains {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	outs := make([]chainOut, len(hosts))
	var wg sync.WaitGroup
	for hi, host := range hosts {
		wg.Add(1)
		go func(hi int, host string) {
			defer wg.Done()
			cs := time.Now()
			var cr ChainResult
			for _, r := range chains[host] {
				data, err := c.get(host + htmlrefs.MOPath(r.Object))
				if err != nil {
					outs[hi] = chainOut{host: host, err: err}
					return
				}
				if c.Verify {
					if err := VerifyObject(c.w, r.Object, data); err != nil {
						outs[hi] = chainOut{host: host, err: err}
						return
					}
				}
				cr.Objects++
				cr.Bytes += int64(len(data))
			}
			cr.Elapsed = time.Since(cs)
			outs[hi] = chainOut{host: host, res: cr}
		}(hi, host)
	}
	wg.Wait()

	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.host == pageHost {
			res.LocalChain = o.res
		} else {
			res.RemoteChain.Objects += o.res.Objects
			res.RemoteChain.Bytes += o.res.Bytes
			if o.res.Elapsed > res.RemoteChain.Elapsed {
				res.RemoteChain.Elapsed = o.res.Elapsed
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// FetchObject downloads one optional object as the document doc links it.
func (c *Client) FetchObject(doc []byte, r htmlrefs.Ref) ([]byte, error) {
	return c.get(string(doc[r.Start:r.End]))
}

// GetDoc fetches a URL and returns the raw body — the served HTML as a
// browser would receive it.
func (c *Client) GetDoc(url string) ([]byte, error) {
	return c.get(url)
}
