package webserve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/htmlrefs"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// PageResult reports one client page download.
type PageResult struct {
	Page         workload.PageID
	Elapsed      time.Duration
	HTMLBytes    int64
	LocalChain   ChainResult // objects fetched from the local server
	RemoteChain  ChainResult // objects fetched from the repository
	OptionalRefs []htmlrefs.Ref

	// Retries counts extra request attempts beyond each first try (HTML and
	// objects, including attempts on the fallback route).
	Retries int
	// Fallbacks counts MO fetches that failed on their assigned server and
	// were re-routed to the repository. Fallback objects and bytes are
	// accounted in RemoteChain — the repository is who actually served them.
	Fallbacks int
	// DegradedHTML reports that the page document itself came from the
	// repository's master copy because the hosting site was unreachable;
	// every reference then points at the repository (Eq. 5's remote chain).
	DegradedHTML bool
}

// Degraded reports whether any part of the download abandoned its assigned
// server for the repository.
func (r *PageResult) Degraded() bool {
	return r.DegradedHTML || r.Fallbacks > 0
}

// ChainResult summarizes one parallel download chain.
type ChainResult struct {
	Objects int
	Bytes   int64
	Elapsed time.Duration
}

// ClientOptions tunes the client's resilience behaviour. The zero value of
// each field selects the default noted on it; Timeout and Retries accept -1
// to mean "disabled" (no request deadline / single attempt).
type ClientOptions struct {
	// Timeout bounds each HTTP request end to end (connect through body).
	// Default 15s; -1 disables, restoring the hang-forever behaviour only a
	// test should want.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed request.
	// Attempts are spaced by exponential backoff with seeded jitter.
	// Default 2; -1 disables retries.
	Retries int
	// BackoffBase is the first retry's nominal delay (default 25ms); each
	// further retry doubles it up to BackoffMax (default 1s). The actual
	// delay is uniformly jittered in [d/2, d).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter stream, making retry schedules
	// reproducible for a fixed request order.
	JitterSeed uint64
	// FallbackBase, when set, is the repository's base URL: a request whose
	// retries are exhausted on a local server is re-issued there — the
	// repository stores every object (and every page's master copy), so the
	// download completes via the remote chain instead of failing.
	FallbackBase string
	// Metrics, when non-nil, receives the client's resilience counters
	// (client.retries, client.fallbacks, client.degraded_pages,
	// client.request_failures).
	Metrics *telemetry.Registry
}

// DefaultClientOptions returns the production defaults described above.
func DefaultClientOptions() ClientOptions {
	return ClientOptions{
		Timeout:     15 * time.Second,
		Retries:     2,
		BackoffBase: 25 * time.Millisecond,
		BackoffMax:  time.Second,
	}
}

// normalize resolves zero values to defaults and -1 sentinels to off.
func (o ClientOptions) normalize() ClientOptions {
	def := DefaultClientOptions()
	if o.Timeout == 0 {
		o.Timeout = def.Timeout
	} else if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.Retries == 0 {
		o.Retries = def.Retries
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = def.BackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = def.BackoffMax
	}
	return o
}

// Client downloads pages the way the paper's browser model does: the HTML
// first, then the embedded (compulsory) objects split by host into two
// chains fetched concurrently — one persistent connection per host, objects
// pipelined sequentially on each — with the page time being the max of the
// chains. Optional links are returned, not fetched (the user may request
// them separately via FetchObject).
//
// The client is resilient: every request carries a timeout, failures are
// retried with exponential backoff and seeded jitter, and — when a
// FallbackBase is configured — a request that keeps failing on a local
// server degrades to the repository, which stores everything. The paper's
// Section-2 premise (repository as always-on root, replicas as
// accelerators) is exactly what makes that degradation sound.
type Client struct {
	w    *workload.Workload
	http *http.Client
	opts ClientOptions
	// Verify makes the client check every object's synthetic content.
	// Verification failures (corrupt or truncated bodies) count as request
	// failures and are retried.
	Verify bool

	// jitter drives backoff randomization; guarded by jmu because the two
	// chains retry concurrently.
	jmu    sync.Mutex
	jitter *rng.Stream

	cRetries, cFallbacks, cDegraded, cFailures *telemetry.Counter
}

// NewClient builds a client for the workload with DefaultClientOptions —
// in particular a 15s per-request timeout, so a stalled server can no
// longer hang FetchPage forever.
func NewClient(w *workload.Workload) *Client {
	return NewClientOptions(w, ClientOptions{})
}

// NewClientOptions builds a client with explicit resilience options.
func NewClientOptions(w *workload.Workload, opts ClientOptions) *Client {
	opts = opts.normalize()
	c := &Client{
		w:    w,
		opts: opts,
		http: &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
			},
		},
		jitter: rng.New(opts.JitterSeed),
	}
	if reg := opts.Metrics; reg != nil {
		c.cRetries = reg.Counter("client.retries")
		c.cFallbacks = reg.Counter("client.fallbacks")
		c.cDegraded = reg.Counter("client.degraded_pages")
		c.cFailures = reg.Counter("client.request_failures")
	}
	return c
}

// Options returns the client's normalized options.
func (c *Client) Options() ClientOptions { return c.opts }

// get fetches a URL fully, once.
func (c *Client) get(url string) ([]byte, error) {
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain so the persistent connection is reusable.
		io.Copy(io.Discard, resp.Body)
		return nil, &statusError{url: url, code: resp.StatusCode, status: resp.Status}
	}
	return io.ReadAll(resp.Body)
}

// statusError is a non-200 response; 5xx are retryable, 4xx are not (a 404
// from a local server means the placement does not store the object — a
// routing fact, not a transient fault).
type statusError struct {
	url    string
	code   int
	status string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("webserve: GET %s: %s", e.url, e.status)
}

// retryable classifies an error: transport failures, timeouts, short reads
// and 5xx responses are worth retrying; 4xx are authoritative.
func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500
	}
	return err != nil
}

// backoff returns the jittered delay before retry attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt-1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return d/2 + time.Duration(c.jitter.Uniform(0, float64(d/2)))
}

// getRetry fetches a URL with the configured retry budget; verify, when
// non-nil, validates the body and its failure counts as a retryable error
// (truncated and corrupted transfers look exactly like that).
func (c *Client) getRetry(url string, verify func([]byte) error) (data []byte, retries int, err error) {
	for attempt := 0; ; attempt++ {
		data, err = c.get(url)
		if err == nil && verify != nil {
			err = verify(data)
		}
		if err == nil {
			return data, retries, nil
		}
		if !retryable(err) || attempt >= c.opts.Retries {
			c.cFailures.Inc()
			return nil, retries, err
		}
		retries++
		c.cRetries.Inc()
		time.Sleep(c.backoff(attempt + 1))
	}
}

// moVerifier returns the content check for object k (nil unless Verify).
func (c *Client) moVerifier(k workload.ObjectID) func([]byte) error {
	if !c.Verify {
		return nil
	}
	return func(data []byte) error { return VerifyObject(c.w, k, data) }
}

// fetchMO downloads one object from url, degrading to the repository when
// the assigned server keeps failing and a fallback base is configured.
func (c *Client) fetchMO(url string, k workload.ObjectID) (data []byte, retries int, fellBack bool, err error) {
	data, retries, err = c.getRetry(url, c.moVerifier(k))
	if err == nil {
		return data, retries, false, nil
	}
	fb := c.opts.FallbackBase
	if fb == "" || hostOf(url) == fb {
		return nil, retries, false, err
	}
	c.cFallbacks.Inc()
	data, r2, err2 := c.getRetry(fb+htmlrefs.MOPath(k), c.moVerifier(k))
	retries += r2
	if err2 != nil {
		// Report the original failure; the fallback error wraps context.
		return nil, retries, true, fmt.Errorf("%v (repository fallback also failed: %v)", err, err2)
	}
	return data, retries, true, nil
}

// hostOf extracts scheme://host of a URL (everything before the path).
func hostOf(url string) string {
	idx := strings.Index(url, "://")
	if idx < 0 {
		return ""
	}
	rest := url[idx+3:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return url
	}
	return url[:idx+3+slash]
}

// FetchPage downloads page j from pageURL: the HTML, then every embedded
// object grouped by host and fetched in per-host chains concurrently. With
// a FallbackBase configured the download survives local-server failures:
// objects re-route to the repository, and if even the HTML is unreachable
// the repository's master copy of the page (whose references all point at
// the repository) serves the view fully degraded.
func (c *Client) FetchPage(pageURL string, j workload.PageID) (*PageResult, error) {
	start := time.Now()
	res := &PageResult{Page: j}

	doc, retries, err := c.getRetry(pageURL, nil)
	res.Retries += retries
	if err != nil {
		fb := c.opts.FallbackBase
		if fb == "" || hostOf(pageURL) == fb || !retryable(err) {
			return nil, err
		}
		doc, retries, err = c.getRetry(fb+htmlrefs.PagePath(j), nil)
		res.Retries += retries
		if err != nil {
			return nil, fmt.Errorf("page %d unreachable on site and repository: %w", j, err)
		}
		res.DegradedHTML = true
		c.cDegraded.Inc()
	}
	res.HTMLBytes = int64(len(doc))

	refs := htmlrefs.ParseRefs(doc)
	chains := map[string][]htmlrefs.Ref{}
	for _, r := range refs {
		if r.Optional {
			// Remember where the link points for FetchObject callers.
			res.OptionalRefs = append(res.OptionalRefs, r)
			continue
		}
		url := string(doc[r.Start:r.End])
		chains[hostOf(url)] = append(chains[hostOf(url)], r)
	}

	pageHost := hostOf(pageURL)
	type chainOut struct {
		host      string
		res       ChainResult
		fbObjects int
		fbBytes   int64
		retries   int
		err       error
	}
	hosts := make([]string, 0, len(chains))
	for h := range chains {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	outs := make([]chainOut, len(hosts))
	var wg sync.WaitGroup
	for hi, host := range hosts {
		wg.Add(1)
		go func(hi int, host string) {
			defer wg.Done()
			cs := time.Now()
			out := chainOut{host: host}
			for _, r := range chains[host] {
				data, retries, fellBack, err := c.fetchMO(host+htmlrefs.MOPath(r.Object), r.Object)
				out.retries += retries
				if err != nil {
					out.err = err
					outs[hi] = out
					return
				}
				if fellBack {
					out.fbObjects++
					out.fbBytes += int64(len(data))
				} else {
					out.res.Objects++
					out.res.Bytes += int64(len(data))
				}
			}
			out.res.Elapsed = time.Since(cs)
			outs[hi] = out
		}(hi, host)
	}
	wg.Wait()

	for _, o := range outs {
		res.Retries += o.retries
		res.Fallbacks += o.fbObjects
		if o.err != nil {
			return nil, o.err
		}
		// Fallback objects were served by the repository regardless of the
		// chain that requested them.
		res.RemoteChain.Objects += o.fbObjects
		res.RemoteChain.Bytes += o.fbBytes
		if o.host == pageHost {
			res.LocalChain = o.res
		} else {
			res.RemoteChain.Objects += o.res.Objects
			res.RemoteChain.Bytes += o.res.Bytes
			if o.res.Elapsed > res.RemoteChain.Elapsed {
				res.RemoteChain.Elapsed = o.res.Elapsed
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// FetchObject downloads one optional object as the document doc links it,
// with the same retry/fallback protection as compulsory objects.
func (c *Client) FetchObject(doc []byte, r htmlrefs.Ref) ([]byte, error) {
	data, _, _, err := c.fetchMO(string(doc[r.Start:r.End]), r.Object)
	return data, err
}

// GetDoc fetches a URL and returns the raw body — the served HTML as a
// browser would receive it.
func (c *Client) GetDoc(url string) ([]byte, error) {
	data, _, err := c.getRetry(url, nil)
	return data, err
}
