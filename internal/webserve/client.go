package webserve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/htmlrefs"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PageResult reports one client page download.
type PageResult struct {
	Page         workload.PageID
	Elapsed      time.Duration
	HTMLBytes    int64
	LocalChain   ChainResult // objects fetched from the local server
	RemoteChain  ChainResult // objects fetched from the repository
	OptionalRefs []htmlrefs.Ref

	// Retries counts extra request attempts beyond each first try (HTML and
	// objects, including attempts on the fallback route).
	Retries int
	// Fallbacks counts MO fetches that failed on their assigned server and
	// were re-routed to the repository. Fallback objects and bytes are
	// accounted in RemoteChain — the repository is who actually served them.
	Fallbacks int
	// DegradedHTML reports that the page document itself came from the
	// repository's master copy because the hosting site was unreachable;
	// every reference then points at the repository (Eq. 5's remote chain).
	DegradedHTML bool
	// Brownout is the serving site's brownout tier when the page was
	// delivered degraded under overload (X-Repl-Brownout); 0 for a
	// full-fidelity page.
	Brownout int
}

// Degraded reports whether any part of the download abandoned its assigned
// server for the repository.
func (r *PageResult) Degraded() bool {
	return r.DegradedHTML || r.Fallbacks > 0
}

// ChainResult summarizes one parallel download chain.
type ChainResult struct {
	Objects int
	Bytes   int64
	Elapsed time.Duration
}

// ClientOptions tunes the client's resilience behaviour. The zero value of
// each field selects the default noted on it; Timeout and Retries accept -1
// to mean "disabled" (no request deadline / single attempt).
type ClientOptions struct {
	// Timeout bounds each HTTP request end to end (connect through body).
	// Default 15s; -1 disables, restoring the hang-forever behaviour only a
	// test should want.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed request.
	// Attempts are spaced by exponential backoff with seeded jitter.
	// Default 2; -1 disables retries.
	Retries int
	// BackoffBase is the first retry's nominal delay (default 25ms); each
	// further retry doubles it up to BackoffMax (default 1s). The actual
	// delay is uniformly jittered in [d/2, d).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter stream, making retry schedules
	// reproducible for a fixed request order.
	JitterSeed uint64
	// FallbackBase, when set, is the repository's base URL: a request whose
	// retries are exhausted on a local server is re-issued there — the
	// repository stores every object (and every page's master copy), so the
	// download completes via the remote chain instead of failing.
	FallbackBase string
	// BreakerThreshold is the consecutive-failure count that trips a
	// per-host circuit breaker: once a host has failed this many getRetry
	// calls in a row (transient failures only — a 404 is an authoritative
	// answer from a healthy server), further requests to it fail fast
	// without touching the network until a cooldown elapses, at which point
	// a single half-open probe decides whether to close the circuit again.
	// Fast-failed requests still take the repository fallback, so a tripped
	// breaker converts retry storms against a dead site into immediate
	// degraded service. Default 3; -1 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the nominal open interval before the half-open
	// probe (default 250ms). The actual interval is jittered in [d, 3d/2)
	// on the breaker's own seeded stream so a fleet of clients does not
	// re-probe in lockstep.
	BreakerCooldown time.Duration
	// HedgeDelay, when positive, arms hedged object fetches (the mHTTP
	// multi-source stance): if an MO's assigned server has not answered
	// within a seeded per-request jittered delay in [d, 3d/2), a second
	// request races it against the repository fallback and the first
	// success wins — a limping server degrades to repository latency
	// instead of stalling the chain until a hard timeout. Zero (the
	// default) disables hedging; it needs FallbackBase to act.
	HedgeDelay time.Duration
	// Deadline, when positive, bounds each FetchPage end to end: the page
	// context carries it, every object/hedge/fallback leg inherits it, and
	// each request exports it via the X-Repl-Deadline header so servers can
	// shed work that is already doomed instead of serving bytes nobody will
	// wait for. Zero leaves page downloads unbounded (per-request Timeout
	// still applies).
	Deadline time.Duration
	// RetryBudget, when non-nil, caps retry amplification: every retry
	// (including fallback re-issues after a failure) must withdraw a token,
	// and tokens are earned back only by successful requests. Sharing one
	// budget across a fleet of clients bounds the cluster-wide retry load to
	// ~(1+ratio)× the offered load during overload, which is what keeps a
	// post-spike retry storm from sustaining a metastable collapse. Nil
	// leaves retries unbudgeted (the pre-admission behaviour).
	RetryBudget *admission.RetryBudget
	// Metrics, when non-nil, receives the client's resilience counters
	// (client.retries, client.fallbacks, client.degraded_pages,
	// client.request_failures) plus the reason-labeled breakdowns
	// (client.retries_by.*, client.fallbacks_by.*).
	Metrics *telemetry.Registry
	// Trace, when non-nil, makes the client emit a span tree per FetchPage
	// — page root, Eq. 5 chains, per-object fetches, every retry, backoff
	// sleep, breaker decision and fallback — and stamp the X-Repl-Trace
	// header on every request so servers parent their serve spans under it.
	Trace *trace.Tracer
}

// DefaultClientOptions returns the production defaults described above.
func DefaultClientOptions() ClientOptions {
	return ClientOptions{
		Timeout:          15 * time.Second,
		Retries:          2,
		BackoffBase:      25 * time.Millisecond,
		BackoffMax:       time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	}
}

// normalize resolves zero values to defaults and -1 sentinels to off.
func (o ClientOptions) normalize() ClientOptions {
	def := DefaultClientOptions()
	if o.Timeout == 0 {
		o.Timeout = def.Timeout
	} else if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.Retries == 0 {
		o.Retries = def.Retries
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = def.BackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = def.BackoffMax
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = def.BreakerThreshold
	} else if o.BreakerThreshold < 0 {
		o.BreakerThreshold = 0
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = def.BreakerCooldown
	}
	return o
}

// Client downloads pages the way the paper's browser model does: the HTML
// first, then the embedded (compulsory) objects split by host into two
// chains fetched concurrently — one persistent connection per host, objects
// pipelined sequentially on each — with the page time being the max of the
// chains. Optional links are returned, not fetched (the user may request
// them separately via FetchObject).
//
// The client is resilient: every request carries a timeout, failures are
// retried with exponential backoff and seeded jitter, and — when a
// FallbackBase is configured — a request that keeps failing on a local
// server degrades to the repository, which stores everything. The paper's
// Section-2 premise (repository as always-on root, replicas as
// accelerators) is exactly what makes that degradation sound.
type Client struct {
	w    *workload.Workload
	http *http.Client
	opts ClientOptions
	// Verify makes the client check every object's synthetic content.
	// Verification failures (corrupt or truncated bodies) count as request
	// failures and are retried.
	Verify bool

	// jitter drives backoff randomization, breakerJitter the breaker's
	// cooldown spread, and hedgeJitter the hedge-delay spread; guarded by
	// jmu because the two chains retry concurrently. All are Split-derived
	// children of the JitterSeed root (see the stream labels below), never
	// the root itself.
	jmu           sync.Mutex
	jitter        *rng.Stream
	breakerJitter *rng.Stream
	hedgeJitter   *rng.Stream

	// Per-host circuit breakers, created on first contact.
	brmu     sync.Mutex
	breakers map[string]*hostBreaker

	cRetries, cFallbacks, cDegraded, cFailures *telemetry.Counter
	cTrips, cFastFails                         *telemetry.Counter
	cHedges, cHedgePrimary, cHedgeFallback     *telemetry.Counter
	cBudgetExhausted                           *telemetry.Counter
	// Reason-labeled breakdowns of retries and fallbacks, keyed by the
	// failureReason vocabulary; a missing key yields a nil (no-op) counter.
	cRetryBy, cFallbackBy map[string]*telemetry.Counter

	tracer *trace.Tracer
}

// failureReason vocabulary: why a request attempt failed. The same strings
// label the client.retries_by.* / client.fallbacks_by.* counters and the
// reason attribute on retry/fallback spans.
const (
	reasonTimeout     = "timeout"
	reasonReset       = "reset"
	reason5xx         = "5xx"
	reasonBreakerOpen = "breaker_open"
	reasonCorrupt     = "corrupt"
	reasonShed        = "shed"
	reasonOther       = "other"
)

// failureReason classifies a request failure for the labeled counters and
// span attributes.
func failureReason(err error) string {
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return reasonCorrupt
	}
	var se *statusError
	if errors.As(err, &se) {
		if se.code == http.StatusTooManyRequests {
			return reasonShed
		}
		if se.code >= 500 {
			return reason5xx
		}
		return reasonOther
	}
	var boe *breakerOpenError
	if errors.As(err, &boe) {
		return reasonBreakerOpen
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return reasonTimeout
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		strings.Contains(err.Error(), "connection reset") ||
		strings.Contains(err.Error(), "EOF") {
		return reasonReset
	}
	return reasonOther
}

// countRetry bumps the retry total and its reason-labeled breakdown.
func (c *Client) countRetry(reason string) {
	c.cRetries.Inc()
	if c.cRetryBy != nil {
		c.cRetryBy[reason].Inc()
	}
}

// countFallback bumps the fallback total and its reason-labeled breakdown.
func (c *Client) countFallback(reason string) {
	c.cFallbacks.Inc()
	if c.cFallbackBy != nil {
		c.cFallbackBy[reason].Inc()
	}
}

// Dedicated rng stream labels for the client's randomized delays. The
// client used to consume its root stream directly for backoff, so its draw
// sequence collided with any other consumer seeded with the same value
// (fault plans included); Split-derived children are pure functions of
// (seed, label), so client timing noise can never shift another stream's
// sequence — TestClientJitterIsolatedFromFaultPlans pins this.
const (
	clientBackoffStream uint64 = iota + 401
	clientBreakerStream
	clientHedgeStream
)

// NewClient builds a client for the workload with DefaultClientOptions —
// in particular a 15s per-request timeout, so a stalled server can no
// longer hang FetchPage forever.
func NewClient(w *workload.Workload) *Client {
	return NewClientOptions(w, ClientOptions{})
}

// NewClientOptions builds a client with explicit resilience options.
func NewClientOptions(w *workload.Workload, opts ClientOptions) *Client {
	opts = opts.normalize()
	c := &Client{
		w:    w,
		opts: opts,
		http: &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
			},
		},
		jitter:        rng.New(opts.JitterSeed).Split(clientBackoffStream),
		breakerJitter: rng.New(opts.JitterSeed).Split(clientBreakerStream),
		hedgeJitter:   rng.New(opts.JitterSeed).Split(clientHedgeStream),
		breakers:      make(map[string]*hostBreaker),
		tracer:        opts.Trace,
	}
	if reg := opts.Metrics; reg != nil {
		c.cRetries = reg.Counter("client.retries")
		c.cFallbacks = reg.Counter("client.fallbacks")
		c.cDegraded = reg.Counter("client.degraded_pages")
		c.cFailures = reg.Counter("client.request_failures")
		c.cTrips = reg.Counter("client.breaker_trips")
		c.cFastFails = reg.Counter("client.breaker_fastfails")
		c.cHedges = reg.Counter("client.hedge.launched")
		c.cHedgePrimary = reg.Counter("client.hedge.wins_by.primary")
		c.cHedgeFallback = reg.Counter("client.hedge.wins_by.fallback")
		c.cBudgetExhausted = reg.Counter("client.retry_budget_exhausted")
		c.cRetryBy = map[string]*telemetry.Counter{
			reasonTimeout:     reg.Counter("client.retries_by.timeout"),
			reasonReset:       reg.Counter("client.retries_by.reset"),
			reason5xx:         reg.Counter("client.retries_by.5xx"),
			reasonBreakerOpen: reg.Counter("client.retries_by.breaker_open"),
			reasonCorrupt:     reg.Counter("client.retries_by.corrupt"),
			reasonShed:        reg.Counter("client.retries_by.shed"),
			reasonOther:       reg.Counter("client.retries_by.other"),
		}
		c.cFallbackBy = map[string]*telemetry.Counter{
			reasonTimeout:     reg.Counter("client.fallbacks_by.timeout"),
			reasonReset:       reg.Counter("client.fallbacks_by.reset"),
			reason5xx:         reg.Counter("client.fallbacks_by.5xx"),
			reasonBreakerOpen: reg.Counter("client.fallbacks_by.breaker_open"),
			reasonCorrupt:     reg.Counter("client.fallbacks_by.corrupt"),
			reasonShed:        reg.Counter("client.fallbacks_by.shed"),
			reasonOther:       reg.Counter("client.fallbacks_by.other"),
		}
	}
	return c
}

// Options returns the client's normalized options.
func (c *Client) Options() ClientOptions { return c.opts }

// get fetches a URL fully, once, stamping the trace-propagation header
// when the request runs under a span and exporting the context deadline
// (if any) via X-Repl-Deadline so the server can shed work that cannot
// finish in time. ctx cancellation (a hedge race already decided, or the
// page deadline lapsing) aborts the request mid-flight. The response
// headers are returned alongside the body so callers can observe serving
// degradation (brownout tier).
func (c *Client) get(ctx context.Context, url, traceHdr string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	if traceHdr != "" {
		req.Header.Set(trace.Header, traceHdr)
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(admission.DeadlineHeader, admission.FormatDeadline(dl))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain so the persistent connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
		se := &statusError{url: url, code: resp.StatusCode, status: resp.Status}
		se.retryAfter = parseRetryAfter(resp.Header)
		return nil, resp.Header, se
	}
	data, err := io.ReadAll(resp.Body)
	return data, resp.Header, err
}

// parseRetryAfter extracts the server's retry hint: the millisecond-precise
// X-Repl-Retry-After-Ms when present, the standard whole-second Retry-After
// otherwise, zero when the response carries neither.
func parseRetryAfter(h http.Header) time.Duration {
	if ms := h.Get(admission.RetryAfterMillisHeader); ms != "" {
		var v int64
		if _, err := fmt.Sscanf(ms, "%d", &v); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if s := h.Get("Retry-After"); s != "" {
		var v int64
		if _, err := fmt.Sscanf(s, "%d", &v); err == nil && v > 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}

// statusError is a non-200 response; 5xx and 429 are retryable, other 4xx
// are not (a 404 from a local server means the placement does not store the
// object — a routing fact, not a transient fault).
type statusError struct {
	url    string
	code   int
	status string
	// retryAfter is the server's jittered retry hint on a 429 shed; retries
	// wait at least this long regardless of the backoff schedule.
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	return fmt.Sprintf("webserve: GET %s: %s", e.url, e.status)
}

// retryable classifies an error: transport failures, timeouts, short reads,
// 5xx responses and 429 sheds are worth retrying; other 4xx are
// authoritative. An open circuit counts as transient — the host may recover,
// and meanwhile the repository fallback should take the request.
func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return err != nil
}

// breakerOpenError is the fast-fail a tripped circuit returns without
// touching the network.
type breakerOpenError struct{ host string }

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("webserve: circuit open for %s", e.host)
}

// hostBreaker is one host's circuit: closed (normal service) → open after
// BreakerThreshold consecutive transient failures (every request fails
// fast) → half-open once the cooldown elapses (exactly one probe goes
// through; its outcome closes or re-opens the circuit).
type hostBreaker struct {
	mu        sync.Mutex
	open      bool
	halfOpen  bool
	probing   bool
	fails     int
	openUntil time.Time
}

// allow reports whether a request to the host may proceed right now, and
// transitions open → half-open when the cooldown has elapsed.
func (b *hostBreaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.halfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	case b.open:
		if now.Before(b.openUntil) {
			return false
		}
		b.open = false
		b.halfOpen = true
		b.probing = true
		return true
	default:
		return true
	}
}

// onSuccess closes the circuit.
func (b *hostBreaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open, b.halfOpen, b.probing = false, false, false
	b.fails = 0
}

// onFailure records one transient failure; at the threshold (or on a failed
// half-open probe) the circuit opens until openUntil. Returns whether this
// call tripped it.
func (b *hostBreaker) onFailure(threshold int, until time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.halfOpen || b.fails >= threshold {
		b.open, b.halfOpen, b.probing = true, false, false
		b.openUntil = until
		return true
	}
	return false
}

// breakerFor returns (creating if needed) the breaker of a host.
func (c *Client) breakerFor(host string) *hostBreaker {
	c.brmu.Lock()
	defer c.brmu.Unlock()
	b := c.breakers[host]
	if b == nil {
		b = &hostBreaker{}
		c.breakers[host] = b
	}
	return b
}

// breakerCooldown returns the jittered open interval, drawn from the
// breaker's dedicated stream.
func (c *Client) breakerCooldown() time.Duration {
	d := c.opts.BreakerCooldown
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return d + time.Duration(c.breakerJitter.Uniform(0, float64(d/2)))
}

// backoff returns the jittered delay before retry attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt-1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return d/2 + time.Duration(c.jitter.Uniform(0, float64(d/2)))
}

// getRetry fetches a URL with the configured retry schedule; verify, when
// non-nil, validates the body and its failure counts as a retryable error
// (truncated and corrupted transfers look exactly like that). sp, when
// non-nil, is the span the request runs under: its context propagates via
// X-Repl-Trace, and every retry, backoff sleep and breaker decision lands
// as a child span or event beneath it. A canceled ctx (the other leg of a
// hedge race won, or the page deadline lapsed) returns immediately without
// feeding the breaker or the failure counters — a lost race is not
// evidence against the host.
//
// Two admission-control rules shape the loop. Every retry must withdraw a
// token from the shared RetryBudget (earned back on success), so a cluster
// of clients cannot amplify offered load by more than ~(1+ratio)× no
// matter how hard the servers shed. And a 429 shed is an authoritative
// answer from a live, overloaded server: it waits at least the server's
// jittered Retry-After hint before retrying, and it never feeds the
// circuit breaker — tripping breakers on sheds would convert a transient
// overload into a self-inflicted outage.
//
// hdr is the last response's headers (nil when the failure never produced
// a response).
func (c *Client) getRetry(ctx context.Context, url string, verify func([]byte) error, sp *trace.Active) (data []byte, hdr http.Header, retries int, err error) {
	var br *hostBreaker
	if c.opts.BreakerThreshold > 0 {
		br = c.breakerFor(hostOf(url))
		if !br.allow(time.Now()) {
			c.cFastFails.Inc()
			sp.Event(trace.SpanBreaker, trace.A(trace.AttrReason, "open"), trace.A(trace.AttrSite, hostOf(url)))
			return nil, nil, 0, &breakerOpenError{host: hostOf(url)}
		}
	}
	for attempt := 0; ; attempt++ {
		data, hdr, err = c.get(ctx, url, sp.HeaderValue())
		if err != nil && ctx.Err() != nil {
			return nil, hdr, retries, ctx.Err()
		}
		if err == nil && verify != nil {
			err = verify(data)
		}
		if err == nil {
			if br != nil {
				br.onSuccess()
			}
			c.opts.RetryBudget.Earn()
			return data, hdr, retries, nil
		}
		shed := failureReason(err) == reasonShed
		exhausted := false
		if retryable(err) && attempt < c.opts.Retries && !c.opts.RetryBudget.Spend() {
			exhausted = true
			c.cBudgetExhausted.Inc()
			sp.Event(trace.SpanRetry, trace.A(trace.AttrReason, "budget_exhausted"))
		}
		if !retryable(err) || attempt >= c.opts.Retries || exhausted {
			c.cFailures.Inc()
			// A non-retryable error is an authoritative answer from a live
			// server, not evidence the host is down — only transient
			// failures feed the breaker. A shed is equally authoritative:
			// the server is up and policing its queue.
			if br != nil && retryable(err) && !shed {
				if br.onFailure(c.opts.BreakerThreshold, time.Now().Add(c.breakerCooldown())) {
					c.cTrips.Inc()
					sp.Event(trace.SpanBreaker, trace.A(trace.AttrReason, "trip"), trace.A(trace.AttrSite, hostOf(url)))
				}
			} else if br != nil {
				br.onSuccess()
			}
			return nil, hdr, retries, err
		}
		retries++
		reason := failureReason(err)
		c.countRetry(reason)
		sp.Event(trace.SpanRetry, trace.A(trace.AttrReason, reason))
		wait := c.backoff(attempt + 1)
		var se *statusError
		if errors.As(err, &se) && se.retryAfter > wait {
			// Honor the server's shed hint: retrying sooner than it asked
			// just lands back in the queue it is trying to drain.
			wait = se.retryAfter
		}
		bo := sp.StartChild(trace.SpanBackoff)
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			bo.End()
			return nil, hdr, retries, ctx.Err()
		}
		bo.End()
	}
}

// moVerifier returns the content check for object k (nil unless Verify).
func (c *Client) moVerifier(k workload.ObjectID) func([]byte) error {
	if !c.Verify {
		return nil
	}
	return func(data []byte) error { return VerifyObject(c.w, k, data) }
}

// hedgeDelay returns the jittered hedge trigger delay in [d, 3d/2), drawn
// from the hedge's dedicated stream.
func (c *Client) hedgeDelay() time.Duration {
	d := c.opts.HedgeDelay
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return d + time.Duration(c.hedgeJitter.Uniform(0, float64(d/2)))
}

// fetchMO downloads one object from url, degrading to the repository when
// the assigned server keeps failing and a fallback base is configured.
// ctx is the page context — its deadline bounds every leg here, fallback
// included. parent, when non-nil, receives an "mo" child span covering the
// whole fetch including any fallback leg. With HedgeDelay armed the fetch
// races a late-started repository leg against a slow assigned server
// instead of waiting for it to fail outright.
func (c *Client) fetchMO(ctx context.Context, url string, k workload.ObjectID, parent *trace.Active) (data []byte, retries int, fellBack bool, err error) {
	mo := parent.StartChild(trace.SpanMO)
	mo.SetAttr(trace.I(trace.AttrObject, int64(k)))
	fb := c.opts.FallbackBase
	if c.opts.HedgeDelay > 0 && fb != "" && hostOf(url) != fb {
		data, retries, fellBack, err = c.fetchMOHedged(ctx, url, k, mo)
		if err == nil {
			mo.SetAttr(trace.I(trace.AttrBytes, int64(len(data))))
		} else {
			mo.SetAttr(trace.A(trace.AttrReason, failureReason(err)))
		}
		mo.End()
		return data, retries, fellBack, err
	}
	data, _, retries, err = c.getRetry(ctx, url, c.moVerifier(k), mo)
	if err == nil {
		mo.SetAttr(trace.I(trace.AttrBytes, int64(len(data))))
		mo.End()
		return data, retries, false, nil
	}
	if fb == "" || hostOf(url) == fb {
		mo.SetAttr(trace.A(trace.AttrReason, failureReason(err)))
		mo.End()
		return nil, retries, false, err
	}
	reason := failureReason(err)
	c.countFallback(reason)
	fbSpan := mo.StartChild(trace.SpanFallback)
	fbSpan.SetAttr(trace.A(trace.AttrReason, reason))
	data, _, r2, err2 := c.getRetry(ctx, fb+htmlrefs.MOPath(k), c.moVerifier(k), fbSpan)
	fbSpan.End()
	retries += r2
	if err2 != nil {
		mo.End()
		// Report the original failure; the fallback error wraps context.
		return nil, retries, true, fmt.Errorf("%w (repository fallback also failed: %v)", err, err2)
	}
	mo.SetAttr(trace.I(trace.AttrBytes, int64(len(data))))
	mo.End()
	return data, retries, true, nil
}

// hedgeLeg is one side of a hedged fetch race.
type hedgeLeg struct {
	data     []byte
	retries  int
	err      error
	fallback bool
}

// fetchMOHedged races the assigned server against a repository leg that
// launches only after the jittered hedge delay: a healthy primary wins
// before the hedge ever fires, a limping one is overtaken at repository
// latency, and a failed one triggers the classic failure fallback
// immediately. The first success cancels the loser; neither a lost race
// nor its canceled requests feed the breakers or failure counters.
func (c *Client) fetchMOHedged(pageCtx context.Context, url string, k workload.ObjectID, mo *trace.Active) (data []byte, retries int, fellBack bool, err error) {
	ctx, cancel := context.WithCancel(pageCtx)
	defer cancel()
	fb := c.opts.FallbackBase
	results := make(chan hedgeLeg, 2)
	go func() {
		d, _, r, e := c.getRetry(ctx, url, c.moVerifier(k), mo)
		results <- hedgeLeg{data: d, retries: r, err: e}
	}()
	launchFallback := func(reason string) {
		fbSpan := mo.StartChild(trace.SpanFallback)
		fbSpan.SetAttr(trace.A(trace.AttrReason, reason))
		go func() {
			d, _, r, e := c.getRetry(ctx, fb+htmlrefs.MOPath(k), c.moVerifier(k), fbSpan)
			fbSpan.End()
			results <- hedgeLeg{data: d, retries: r, err: e, fallback: true}
		}()
	}
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	// launched: a fallback leg is running; hedged: it was the timer (not a
	// primary failure) that launched it, so its outcome is a hedge win/loss.
	launched, hedged, pending := false, false, 1
	var primaryErr, fallbackErr error
	for {
		select {
		case <-timer.C:
			if !launched {
				launched, hedged = true, true
				c.cHedges.Inc()
				mo.Event(trace.SpanHedge, trace.A(trace.AttrSite, hostOf(url)))
				pending++
				launchFallback("hedge")
			}
		case leg := <-results:
			pending--
			retries += leg.retries
			if leg.err == nil {
				if hedged && leg.fallback {
					c.cHedgeFallback.Inc()
				} else if hedged {
					c.cHedgePrimary.Inc()
				}
				cancel()
				return leg.data, retries, leg.fallback, nil
			}
			if leg.fallback {
				fallbackErr = leg.err
			} else {
				primaryErr = leg.err
				if !launched {
					// The primary failed outright before the hedge fired:
					// this is the ordinary failure-triggered fallback, not a
					// hedge — count it as such.
					launched = true
					timer.Stop()
					reason := failureReason(leg.err)
					c.countFallback(reason)
					pending++
					launchFallback(reason)
				}
			}
			if pending == 0 {
				if primaryErr == nil {
					primaryErr = fallbackErr
				}
				return nil, retries, true, fmt.Errorf("%w (repository fallback also failed: %v)", primaryErr, fallbackErr)
			}
		}
	}
}

// hostOf extracts scheme://host of a URL (everything before the path).
func hostOf(url string) string {
	idx := strings.Index(url, "://")
	if idx < 0 {
		return ""
	}
	rest := url[idx+3:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return url
	}
	return url[:idx+3+slash]
}

// FetchPage downloads page j from pageURL: the HTML, then every embedded
// object grouped by host and fetched in per-host chains concurrently. With
// a FallbackBase configured the download survives local-server failures:
// objects re-route to the repository, and if even the HTML is unreachable
// the repository's master copy of the page (whose references all point at
// the repository) serves the view fully degraded. With a Deadline
// configured the whole download runs under it, propagated to every server
// touched.
func (c *Client) FetchPage(pageURL string, j workload.PageID) (*PageResult, error) {
	return c.FetchPageCtx(context.Background(), pageURL, j)
}

// FetchPageCtx is FetchPage under a caller context: its cancellation and
// deadline bound the entire download — HTML, every object chain, every
// hedge and fallback leg — and the deadline is exported to every server
// via X-Repl-Deadline so already-doomed work is shed, not served. When ctx
// carries no deadline and ClientOptions.Deadline is set, that deadline is
// applied here.
func (c *Client) FetchPageCtx(ctx context.Context, pageURL string, j workload.PageID) (*PageResult, error) {
	if _, ok := ctx.Deadline(); !ok && c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	start := time.Now()
	res := &PageResult{Page: j}

	root := c.tracer.StartTrace(trace.SpanPage)
	root.SetAttr(trace.I(trace.AttrPage, int64(j)), trace.A(trace.AttrSite, hostOf(pageURL)))
	defer root.End()

	html := root.StartChild(trace.SpanHTML)
	doc, hdr, retries, err := c.getRetry(ctx, pageURL, nil, html)
	res.Retries += retries
	if err != nil {
		fb := c.opts.FallbackBase
		if fb == "" || hostOf(pageURL) == fb || !retryable(err) {
			html.SetAttr(trace.A(trace.AttrReason, failureReason(err)))
			html.End()
			return nil, err
		}
		fbSpan := html.StartChild(trace.SpanFallback)
		fbSpan.SetAttr(trace.A(trace.AttrReason, failureReason(err)))
		doc, hdr, retries, err = c.getRetry(ctx, fb+htmlrefs.PagePath(j), nil, fbSpan)
		fbSpan.End()
		res.Retries += retries
		if err != nil {
			html.End()
			return nil, fmt.Errorf("page %d unreachable on site and repository: %w", j, err)
		}
		res.DegradedHTML = true
		root.SetAttr(trace.A(trace.AttrDegraded, "true"))
		c.cDegraded.Inc()
	}
	if hdr != nil {
		if tier := hdr.Get(admission.BrownoutHeader); tier != "" {
			_, _ = fmt.Sscanf(tier, "%d", &res.Brownout)
		}
	}
	res.HTMLBytes = int64(len(doc))
	html.SetAttr(trace.I(trace.AttrBytes, res.HTMLBytes))
	html.End()

	refs := htmlrefs.ParseRefs(doc)
	chains := map[string][]htmlrefs.Ref{}
	for _, r := range refs {
		if r.Optional {
			// Remember where the link points for FetchObject callers.
			res.OptionalRefs = append(res.OptionalRefs, r)
			continue
		}
		url := string(doc[r.Start:r.End])
		chains[hostOf(url)] = append(chains[hostOf(url)], r)
	}

	pageHost := hostOf(pageURL)
	type chainOut struct {
		host      string
		res       ChainResult
		fbObjects int
		fbBytes   int64
		retries   int
		err       error
	}
	hosts := make([]string, 0, len(chains))
	for h := range chains {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	outs := make([]chainOut, len(hosts))
	var wg sync.WaitGroup
	for hi, host := range hosts {
		wg.Add(1)
		go func(hi int, host string) {
			defer wg.Done()
			cs := time.Now()
			out := chainOut{host: host}
			chainKind := "remote"
			if host == pageHost {
				chainKind = "local"
			}
			ch := root.StartChild(trace.SpanChain)
			ch.SetAttr(trace.A(trace.AttrChain, chainKind), trace.A(trace.AttrSite, host))
			defer ch.End()
			for _, r := range chains[host] {
				data, retries, fellBack, err := c.fetchMO(ctx, host+htmlrefs.MOPath(r.Object), r.Object, ch)
				out.retries += retries
				if err != nil {
					out.err = err
					outs[hi] = out
					return
				}
				if fellBack {
					out.fbObjects++
					out.fbBytes += int64(len(data))
				} else {
					out.res.Objects++
					out.res.Bytes += int64(len(data))
				}
			}
			out.res.Elapsed = time.Since(cs)
			outs[hi] = out
		}(hi, host)
	}
	wg.Wait()

	for _, o := range outs {
		res.Retries += o.retries
		res.Fallbacks += o.fbObjects
		if o.err != nil {
			return nil, o.err
		}
		// Fallback objects were served by the repository regardless of the
		// chain that requested them.
		res.RemoteChain.Objects += o.fbObjects
		res.RemoteChain.Bytes += o.fbBytes
		if o.host == pageHost {
			res.LocalChain = o.res
		} else {
			res.RemoteChain.Objects += o.res.Objects
			res.RemoteChain.Bytes += o.res.Bytes
			if o.res.Elapsed > res.RemoteChain.Elapsed {
				res.RemoteChain.Elapsed = o.res.Elapsed
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// FetchObject downloads one optional object as the document doc links it,
// with the same retry/fallback protection as compulsory objects. The fetch
// gets its own root trace — optional objects are user-initiated follow-ups,
// not part of the page's Eq. 5 critical path.
func (c *Client) FetchObject(doc []byte, r htmlrefs.Ref) ([]byte, error) {
	sp := c.tracer.StartTrace(trace.SpanOpt)
	sp.SetAttr(trace.I(trace.AttrObject, int64(r.Object)))
	data, _, _, err := c.fetchMO(context.Background(), string(doc[r.Start:r.End]), r.Object, sp)
	sp.End()
	return data, err
}

// GetDoc fetches a URL and returns the raw body — the served HTML as a
// browser would receive it.
func (c *Client) GetDoc(url string) ([]byte, error) {
	data, _, _, err := c.getRetry(context.Background(), url, nil, nil)
	return data, err
}
