package webserve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/accesslog"
	"repro/internal/admission"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ClusterOptions controls the optional observability and chaos wiring of a
// cluster.
type ClusterOptions struct {
	// Metrics registers per-site request/byte/hit-miss counters in a
	// cluster-wide registry and serves it as a JSON snapshot at /metrics on
	// every server (the repository and each site).
	Metrics bool
	// Pprof mounts net/http/pprof under /debug/pprof/ on every server mux.
	// Requires Metrics-independent opt-in: profiling endpoints expose
	// internals and cost a mux lookup per request.
	Pprof bool
	// Faults arms deterministic fault injection: each server's handler is
	// wrapped in the plan's injector middleware (errors, resets, truncated
	// bodies, latency, outage windows). Nil serves a healthy cluster.
	Faults *faults.Plan
	// ShutdownTimeout bounds Close's graceful drain (default 5s).
	ShutdownTimeout time.Duration
	// Trace, when non-nil, arms end-to-end request tracing: every server
	// emits a "serve" span for each request carrying an X-Repl-Trace header,
	// parented under the client's span, into this buffer. Clients built via
	// Cluster.Client share the buffer (and its ID stream) automatically.
	Trace *trace.Buffer
	// TraceSeed seeds the deterministic trace/span-ID stream.
	TraceSeed uint64
	// Journal, when non-nil, is the control-plane flight recorder, served at
	// /debug/journal on every server (JSONL; ?format=text for readable
	// lines).
	Journal *trace.Journal
	// AccessTap, when non-nil, receives one Observe per served page view
	// (site, page, cluster-uptime seconds) from every site's serving path —
	// the feed the adaptive planner's frequency estimator runs on. Must be
	// safe for concurrent use.
	AccessTap accesslog.Tap
	// Admission, when non-nil, arms overload protection on every server:
	// each request passes a bounded deadline-aware admission queue (CoDel
	// sojourn shedding, AIMD concurrency limits) ahead of the fault layer,
	// sheds answer 429 with a seeded-jitter Retry-After, and sustained
	// shed pressure walks the sites into brownout page serving. The zero
	// Config is a valid production default; nil leaves the cluster
	// unprotected (the pre-admission behaviour).
	Admission *admission.Config
}

// setTelemetry hooks the repository's counters into the registry. A nil
// registry leaves the nil no-op counters in place.
func (r *Repository) setTelemetry(reg *telemetry.Registry) {
	r.cRequests = reg.Counter("repo.mo_requests")
	r.cPages = reg.Counter("repo.page_requests")
	r.cBytes = reg.Counter("repo.bytes")
	r.cMisses = reg.Counter("repo.misses")
	r.cWriteErrs = reg.Counter("repo.write_errors")
	// Shared across every server: a disconnected client whose body write
	// was abandoned, wherever it was being served from.
	r.cAborted = reg.Counter("server.aborted_writes")
}

// siteCounterPrefix names the registry namespace of one site's counters.
func siteCounterPrefix(site int) string {
	return fmt.Sprintf("site.%d.", site)
}

// setTelemetry hooks the site's counters into the registry.
func (s *LocalServer) setTelemetry(reg *telemetry.Registry) {
	prefix := siteCounterPrefix(int(s.site))
	s.cPages = reg.Counter(prefix + "page_requests")    //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cMOs = reg.Counter(prefix + "mo_requests")        //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cBytes = reg.Counter(prefix + "bytes")            //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cMisses = reg.Counter(prefix + "misses")          //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cWriteErrs = reg.Counter(prefix + "write_errors") //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cAborted = reg.Counter("server.aborted_writes")
	s.cBrownoutPages = reg.Counter(prefix + "brownout_pages")          //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	s.cBrownoutDropped = reg.Counter(prefix + "brownout_dropped_refs") //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
}

// wrapMux wraps a handler with the optional /metrics, /debug/journal and
// /debug/pprof/ routes. With none enabled the bare handler is returned — no
// mux on the serving path.
func wrapMux(h http.Handler, reg *telemetry.Registry, withPprof bool, journal *trace.Journal) http.Handler {
	if reg == nil && !withPprof && journal == nil {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	if reg != nil {
		mux.Handle("/metrics", telemetry.Handler(reg))
	}
	if journal != nil {
		mux.Handle("/debug/journal", trace.JournalHandler(journal))
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
