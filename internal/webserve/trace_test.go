package webserve

import (
	"io"
	"net/http"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEndToEndTracePropagation runs a traced cluster end to end and checks
// the span forest: every FetchPage yields one page root, its chains and
// object fetches, and — because the X-Repl-Trace header propagated — a
// server-side "serve" span per request parented inside the same trace.
func TestEndToEndTracePropagation(t *testing.T) {
	w := tinyWorkload(t)
	p := plannedPlacement(t, w)
	buf := trace.NewBuffer(0)
	journal := trace.NewJournal(64)
	cluster, err := StartClusterOptions(w, p, ClusterOptions{
		Metrics: true, Trace: buf, TraceSeed: 99, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client(ClientOptions{})
	const views = 4
	for j := 0; j < views; j++ {
		pid := workload.PageID(j)
		if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
			t.Fatal(err)
		}
	}

	spans := buf.Spans()
	var pages, serves, chains, html int
	traceIDs := make(map[trace.TraceID]bool)
	serveByTrace := make(map[trace.TraceID]int)
	spanByID := make(map[trace.SpanID]*trace.Span)
	for i := range spans {
		spanByID[spans[i].ID] = &spans[i]
	}
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case trace.SpanPage:
			pages++
			traceIDs[s.Trace] = true
			if s.Kind != trace.KindClient {
				t.Fatalf("page span kind %q", s.Kind)
			}
		case trace.SpanServe:
			serves++
			serveByTrace[s.Trace]++
			if s.Kind != trace.KindServer {
				t.Fatalf("serve span kind %q", s.Kind)
			}
			parent := spanByID[s.Parent]
			if parent == nil {
				t.Fatalf("serve span parent %x not in buffer", s.Parent)
			}
			if parent.Trace != s.Trace {
				t.Fatalf("serve span crossed traces: %+v under %+v", s, parent)
			}
			if s.Attr(trace.AttrStatus) != "200" {
				t.Fatalf("serve status %q", s.Attr(trace.AttrStatus))
			}
		case trace.SpanChain:
			chains++
		case trace.SpanHTML:
			html++
		}
	}
	if pages != views {
		t.Fatalf("page roots = %d, want %d", pages, views)
	}
	if html != views {
		t.Fatalf("html spans = %d, want %d", html, views)
	}
	if chains == 0 {
		t.Fatal("no chain spans")
	}
	if serves == 0 {
		t.Fatal("no server-side spans — header propagation broken")
	}
	for tid := range traceIDs {
		if serveByTrace[tid] == 0 {
			t.Fatalf("trace %x has no serve spans", tid)
		}
	}

	// The analyzer consumes live traces with the same code path as sim
	// traces.
	a := trace.Analyze(spans)
	if a.Traces != views {
		t.Fatalf("Analyze saw %d traces, want %d", a.Traces, views)
	}
	if len(a.TopSlowest(3)) != 3 {
		t.Fatalf("TopSlowest(3) returned %d entries", len(a.TopSlowest(3)))
	}

	// /debug/journal is mounted on every server when a journal is armed.
	journal.Record("test.event", trace.A("k", "v"))
	resp, err := http.Get(cluster.RepoBase + "/debug/journal")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/journal: status %d, %d bytes", resp.StatusCode, len(body))
	}

	// build.info rides along whenever metrics are enabled.
	snap := cluster.Metrics.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "build.info" && g.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("build.info gauge missing")
	}
	if len(snap.Infos) == 0 {
		t.Fatal("build infos missing")
	}
}

// TestTraceDeterministicIDs pins that two clusters with the same TraceSeed
// hand out identical ID sequences (the live system cannot be golden-tested
// end to end — wall-clock durations differ — but identity must be).
func TestTraceDeterministicIDs(t *testing.T) {
	mk := func() []trace.SpanID {
		buf := trace.NewBuffer(0)
		tr := trace.NewTracer(buf, 5, trace.KindClient)
		var ids []trace.SpanID
		for i := 0; i < 16; i++ {
			sp := tr.StartTrace(trace.SpanPage)
			_, id := sp.Context()
			ids = append(ids, id)
			sp.End()
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ID %d differs: %x vs %x", i, a[i], b[i])
		}
	}
}
