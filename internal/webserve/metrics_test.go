package webserve

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"testing"

	"repro/internal/telemetry"
)

// fetchSnapshot GETs base/metrics and decodes the JSON snapshot.
func fetchSnapshot(t *testing.T, base string) *telemetry.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestMetricsEndpoint is the golden /metrics test over real loopback HTTP:
// fetch pages through the actual servers, then assert the JSON snapshot's
// per-site counters reconcile exactly with what the client observed.
func TestMetricsEndpoint(t *testing.T) {
	w := tinyWorkload(t)
	p := plannedPlacement(t, w)
	cluster, err := StartClusterOptions(w, p, ClusterOptions{Metrics: true, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Metrics == nil {
		t.Fatal("Metrics option did not populate cluster.Metrics")
	}

	client := NewClient(w)
	client.Verify = true
	pagesPerSite := make([]int64, w.NumSites())
	localPerSite := make([]int64, w.NumSites())
	var remoteObjs int64
	for site := range w.Sites {
		for _, pid := range w.Sites[site].Pages[:3] {
			res, err := client.FetchPage(cluster.PageURL(pid), pid)
			if err != nil {
				t.Fatal(err)
			}
			pagesPerSite[site]++
			localPerSite[site] += int64(res.LocalChain.Objects)
			remoteObjs += int64(res.RemoteChain.Objects)
		}
	}

	// The endpoint must be live on the repository and on every site server,
	// all serving the same cluster-wide registry.
	snap := fetchSnapshot(t, cluster.RepoBase)
	siteSnap := fetchSnapshot(t, cluster.SiteBases[0])
	if snap.CounterValue("repo.mo_requests") != siteSnap.CounterValue("repo.mo_requests") {
		t.Error("repository and site servers disagree on the shared registry")
	}

	var totalPages, wantPages int64
	for site := range w.Sites {
		prefix := siteCounterPrefix(site)
		if got := snap.CounterValue(prefix + "page_requests"); got != pagesPerSite[site] {
			t.Errorf("site %d page_requests = %d, want %d", site, got, pagesPerSite[site])
		}
		if got := snap.CounterValue(prefix + "mo_requests"); got != localPerSite[site] {
			t.Errorf("site %d mo_requests = %d, want %d local objects", site, got, localPerSite[site])
		}
		if localPerSite[site] > 0 && snap.CounterValue(prefix+"bytes") == 0 {
			t.Errorf("site %d served objects but counted no bytes", site)
		}
		if got := snap.CounterValue(prefix + "misses"); got != 0 {
			t.Errorf("site %d misses = %d under a verified planned fetch", site, got)
		}
		totalPages += snap.CounterValue(prefix + "page_requests")
		wantPages += pagesPerSite[site]
	}
	if totalPages != wantPages {
		t.Errorf("page_requests sum to %d, want %d fetched pages", totalPages, wantPages)
	}
	if got := snap.CounterValue("repo.mo_requests"); got != remoteObjs {
		t.Errorf("repo.mo_requests = %d, want %d remote objects", got, remoteObjs)
	}
	if remoteObjs > 0 && snap.CounterValue("repo.bytes") == 0 {
		t.Error("repository served objects but counted no bytes")
	}

	// Snapshots are name-sorted so the encoding is deterministic.
	if !sort.SliceIsSorted(snap.Counters, func(i, j int) bool {
		return snap.Counters[i].Name < snap.Counters[j].Name
	}) {
		t.Error("snapshot counters not sorted by name")
	}

	// A bogus request must count as a miss without disturbing the rest.
	resp, err := http.Get(cluster.SiteBases[0] + "/mo/999999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus object: %s", resp.Status)
	}
	after := fetchSnapshot(t, cluster.RepoBase)
	if got := after.CounterValue(siteCounterPrefix(0) + "misses"); got != 1 {
		t.Errorf("site 0 misses after bogus request = %d, want 1", got)
	}
}

// TestMetricsDisabledByDefault keeps the zero-cost default honest: a plain
// StartCluster has no registry and no /metrics route.
func TestMetricsDisabledByDefault(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, plannedPlacement(t, w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Metrics != nil {
		t.Error("StartCluster populated a registry without opting in")
	}
	resp, err := http.Get(cluster.RepoBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("/metrics served without the Metrics option")
	}
}

// TestPprofEndpoint checks the profiling mux is mounted when asked for.
func TestPprofEndpoint(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartClusterOptions(w, plannedPlacement(t, w), ClusterOptions{Metrics: true, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	resp, err := http.Get(cluster.RepoBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: %s", resp.Status)
	}
}
