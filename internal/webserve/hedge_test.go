package webserve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// hedgePair starts a primary and a fallback server with controllable
// behaviour and returns a metered client armed for hedging.
func hedgePair(t *testing.T, primary, fallback http.Handler, hedge time.Duration) (*Client, *httptest.Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	prim := httptest.NewServer(primary)
	t.Cleanup(prim.Close)
	fb := httptest.NewServer(fallback)
	t.Cleanup(fb.Close)
	reg := telemetry.NewRegistry()
	c := NewClientOptions(tinyWorkload(t), ClientOptions{
		Retries:          -1,
		BreakerThreshold: -1,
		FallbackBase:     fb.URL,
		HedgeDelay:       hedge,
		Metrics:          reg,
	})
	return c, prim, fb, reg
}

// TestHedgeOvertakesLimpingPrimary pins the tentpole behaviour: a primary
// that answers — eventually — is overtaken by the late-started repository
// leg, so the chain proceeds at repository latency instead of waiting out
// the limp. The loser is canceled, and the win is booked to the fallback.
func TestHedgeOvertakesLimpingPrimary(t *testing.T) {
	release := make(chan struct{})
	primary := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		<-release // limping: stalls until the test lets go
		rw.Write([]byte("primary"))
	})
	fallback := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Write([]byte("fallback"))
	})
	c, prim, _, reg := hedgePair(t, primary, fallback, 5*time.Millisecond)
	defer close(release)

	data, _, fellBack, err := c.fetchMO(context.Background(), prim.URL+"/mo/0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack || string(data) != "fallback" {
		t.Fatalf("hedge did not win: fellBack=%v data=%q", fellBack, data)
	}
	if got := reg.Counter("client.hedge.launched").Value(); got != 1 {
		t.Errorf("hedge.launched = %d, want 1", got)
	}
	if got := reg.Counter("client.hedge.wins_by.fallback").Value(); got != 1 {
		t.Errorf("hedge.wins_by.fallback = %d, want 1", got)
	}
	if got := reg.Counter("client.hedge.wins_by.primary").Value(); got != 0 {
		t.Errorf("hedge.wins_by.primary = %d, want 0", got)
	}
}

// TestHedgeNotLaunchedForHealthyPrimary pins the cost model: a primary that
// answers inside the hedge delay never triggers the second request.
func TestHedgeNotLaunchedForHealthyPrimary(t *testing.T) {
	var fbHits atomic.Int64
	primary := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Write([]byte("primary"))
	})
	fallback := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		fbHits.Add(1)
		rw.Write([]byte("fallback"))
	})
	c, prim, _, reg := hedgePair(t, primary, fallback, 250*time.Millisecond)

	data, _, fellBack, err := c.fetchMO(context.Background(), prim.URL+"/mo/0", 0, nil)
	if err != nil || fellBack || string(data) != "primary" {
		t.Fatalf("healthy primary lost: err=%v fellBack=%v data=%q", err, fellBack, data)
	}
	if got := reg.Counter("client.hedge.launched").Value(); got != 0 {
		t.Errorf("hedge.launched = %d, want 0", got)
	}
	if fbHits.Load() != 0 {
		t.Errorf("fallback server saw %d requests, want 0", fbHits.Load())
	}
}

// TestHedgePrimaryWinStillCounts pins the race accounting the other way: if
// the hedge launches but the primary answers first anyway, the win is booked
// to the primary and the data is the primary's.
func TestHedgePrimaryWinStillCounts(t *testing.T) {
	release := make(chan struct{})
	primary := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		time.Sleep(20 * time.Millisecond) // past the hedge trigger, before the fallback
		rw.Write([]byte("primary"))
	})
	fallback := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		<-release // the hedge leg stalls; the primary must win
		rw.Write([]byte("fallback"))
	})
	c, prim, _, reg := hedgePair(t, primary, fallback, 2*time.Millisecond)
	defer close(release)

	data, _, fellBack, err := c.fetchMO(context.Background(), prim.URL+"/mo/0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack || string(data) != "primary" {
		t.Fatalf("primary's win misbooked: fellBack=%v data=%q", fellBack, data)
	}
	if got := reg.Counter("client.hedge.launched").Value(); got != 1 {
		t.Errorf("hedge.launched = %d, want 1", got)
	}
	if got := reg.Counter("client.hedge.wins_by.primary").Value(); got != 1 {
		t.Errorf("hedge.wins_by.primary = %d, want 1", got)
	}
}

// TestHedgeFailedPrimaryIsClassicFallback pins the hedged path's failure
// semantics: a primary that fails outright before the hedge timer fires
// takes the ordinary failure-triggered fallback — counted under
// client.fallbacks_by.*, not as a hedge launch or win.
func TestHedgeFailedPrimaryIsClassicFallback(t *testing.T) {
	primary := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		http.Error(rw, "boom", http.StatusServiceUnavailable)
	})
	fallback := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Write([]byte("fallback"))
	})
	c, prim, _, reg := hedgePair(t, primary, fallback, time.Minute)

	data, _, fellBack, err := c.fetchMO(context.Background(), prim.URL+"/mo/0", 0, nil)
	if err != nil || !fellBack || string(data) != "fallback" {
		t.Fatalf("failure fallback broken: err=%v fellBack=%v data=%q", err, fellBack, data)
	}
	if got := reg.Counter("client.hedge.launched").Value(); got != 0 {
		t.Errorf("hedge.launched = %d, want 0 (this was a failure, not a hedge)", got)
	}
	if got := reg.Counter("client.fallbacks_by.5xx").Value(); got != 1 {
		t.Errorf("fallbacks_by.5xx = %d, want 1", got)
	}
	if got := reg.Counter("client.hedge.wins_by.fallback").Value(); got != 0 {
		t.Errorf("hedge.wins_by.fallback = %d, want 0", got)
	}
}

// TestCorruptBodyIsRetriedThenFallsBack pins the satellite contract: a
// checksum mismatch is a retryable failure with reason "corrupt" — never a
// success — and degrades to the repository like any transient fault.
func TestCorruptBodyIsRetriedThenFallsBack(t *testing.T) {
	w := tinyWorkload(t)
	const k = 0
	good, err := io.ReadAll(ObjectReader(w, RepoSource, k))
	if err != nil {
		t.Fatal(err)
	}
	var primHits atomic.Int64
	primary := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		primHits.Add(1)
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0xFF // persistent corruption: every read is bad
		rw.Write(bad)
	}))
	defer primary.Close()
	fallback := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Write(good)
	}))
	defer fallback.Close()

	reg := telemetry.NewRegistry()
	c := NewClientOptions(w, ClientOptions{
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: -1,
		FallbackBase:     fallback.URL,
		Metrics:          reg,
	})
	c.Verify = true

	data, _, fellBack, err := c.fetchMO(context.Background(), primary.URL+"/mo/0", k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack || string(data) != string(good) {
		t.Fatalf("corrupt fetch did not degrade cleanly: fellBack=%v", fellBack)
	}
	if got := primHits.Load(); got != 2 {
		t.Errorf("primary hit %d times, want 2 (first try + one retry)", got)
	}
	if got := reg.Counter("client.retries_by.corrupt").Value(); got != 1 {
		t.Errorf("retries_by.corrupt = %d, want 1", got)
	}
	if got := reg.Counter("client.fallbacks_by.corrupt").Value(); got != 1 {
		t.Errorf("fallbacks_by.corrupt = %d, want 1", got)
	}
}
