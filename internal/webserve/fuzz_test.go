package webserve

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// fuzzWorkload is a fixed tiny workload the fuzz target verifies against —
// built once, outside the fuzz loop.
func fuzzWorkload(tb testing.TB) *workload.Workload {
	tb.Helper()
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 6, 10
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 120, 40, 60
	cfg.MOClasses = []workload.SizeClass{
		{Frac: 0.5, Lo: 2 * units.KB, Hi: 8 * units.KB},
		{Frac: 0.5, Lo: 8 * units.KB, Hi: 32 * units.KB},
	}
	return workload.MustGenerate(cfg, 66)
}

// FuzzPayloadRoundTrip pins the payload codec's contract on arbitrary bytes:
// decoding never panics; any header that decodes is canonical (re-encodes to
// the same PayloadHeaderLen bytes and re-decodes to the same value); and
// full verification never panics regardless of what the header claims. Seeds
// cover genuine payloads from both source kinds plus the classic mutations
// (bit-flip, truncation, padding games, junk).
func FuzzPayloadRoundTrip(f *testing.F) {
	w := fuzzWorkload(f)
	genuine, err := io.ReadAll(ObjectReader(w, RepoSource, 0))
	if err != nil {
		f.Fatal(err)
	}
	site, err := io.ReadAll(ObjectReader(w, 1, 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add(site)
	f.Add(genuine[:PayloadHeaderLen])
	f.Add(genuine[:PayloadHeaderLen-1]) // too short for a header
	flipped := append([]byte(nil), genuine...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("REPL1 obj=0 src=-1 seed=0000000000000000 len=96 sum=00000000"))
	f.Add([]byte("not a payload at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodePayloadHeader(data)
		if err != nil {
			var ie *IntegrityError
			if !errors.As(err, &ie) {
				t.Fatalf("decode failure is %T, want *IntegrityError: %v", err, err)
			}
			return
		}
		enc := EncodePayloadHeader(h)
		if !bytes.Equal(enc, data[:PayloadHeaderLen]) {
			t.Fatalf("accepted header is not canonical:\n%q\nvs\n%q", data[:PayloadHeaderLen], enc)
		}
		h2, err := DecodePayloadHeader(enc)
		if err != nil || h2 != h {
			t.Fatalf("canonical header did not round-trip: %+v vs %+v (%v)", h, h2, err)
		}
		// Full verification must classify, never panic, whatever the header
		// claims — object IDs outside the workload included.
		if int(h.Object) < w.NumObjects() {
			_ = VerifyObject(w, h.Object, data)
			_ = VerifyObjectFrom(w, h.Source, h.Object, data)
		}
	})
}
