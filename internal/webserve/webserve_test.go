package webserve

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// corePlan plans with the full algorithm (indirection keeps the test body
// terse).
func corePlan(env *model.Env) (*model.Placement, *core.Result, error) {
	return core.Plan(env, core.Options{Workers: 1})
}

// tinyWorkload keeps object sizes small so integration tests move little
// data over loopback.
func tinyWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin = 6
	cfg.PagesPerSiteMax = 10
	cfg.GlobalObjects = 120
	cfg.ObjectsPerSite = 40
	cfg.ObjectsPerMax = 60
	cfg.MOClasses = []workload.SizeClass{
		{Frac: 0.5, Lo: 2 * units.KB, Hi: 8 * units.KB},
		{Frac: 0.5, Lo: 8 * units.KB, Hi: 32 * units.KB},
	}
	return workload.MustGenerate(cfg, 66)
}

func plannedPlacement(t *testing.T, w *workload.Workload) *model.Placement {
	t.Helper()
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(66))
	if err != nil {
		t.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := corePlan(env)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestObjectReaderAndVerify(t *testing.T) {
	w := tinyWorkload(t)
	for k := 0; k < 5; k++ {
		id := workload.ObjectID(k)
		data, err := io.ReadAll(ObjectReader(w, RepoSource, id))
		if err != nil {
			t.Fatal(err)
		}
		if units.ByteSize(len(data)) != w.ObjectSize(id) {
			t.Fatalf("object %d: %d bytes, want %d", k, len(data), w.ObjectSize(id))
		}
		if err := VerifyObject(w, id, data); err != nil {
			t.Fatal(err)
		}
		// Corruption is detected.
		data[len(data)/2] ^= 0xFF
		if err := VerifyObject(w, id, data); err == nil {
			t.Fatal("corruption not detected")
		}
		// Wrong length is detected.
		if err := VerifyObject(w, id, data[:len(data)-1]); err == nil {
			t.Fatal("truncation not detected")
		}
	}
}

func TestObjectsDiffer(t *testing.T) {
	w := tinyWorkload(t)
	a, _ := io.ReadAll(ObjectReader(w, RepoSource, 0))
	b, _ := io.ReadAll(ObjectReader(w, RepoSource, 1))
	if len(a) == len(b) && string(a) == string(b) {
		t.Error("distinct objects have identical content")
	}
}

func TestClusterEndToEnd(t *testing.T) {
	w := tinyWorkload(t)
	p := plannedPlacement(t, w)
	cluster, err := StartCluster(w, p)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := NewClient(w)
	client.Verify = true

	checked := 0
	for _, site := range cluster.Sites {
		for _, pid := range w.Sites[site.Site()].Pages[:2] {
			res, err := client.FetchPage(cluster.PageURL(pid), pid)
			if err != nil {
				t.Fatal(err)
			}
			// The split the client observed must match the placement.
			wantLocal, wantRemote := 0, 0
			for idx := range w.Pages[pid].Compulsory {
				if p.CompLocal(pid, idx) {
					wantLocal++
				} else {
					wantRemote++
				}
			}
			if res.LocalChain.Objects != wantLocal || res.RemoteChain.Objects != wantRemote {
				t.Fatalf("page %d: client saw %d/%d local/remote, placement says %d/%d",
					pid, res.LocalChain.Objects, res.RemoteChain.Objects, wantLocal, wantRemote)
			}
			if res.HTMLBytes == 0 || res.Elapsed <= 0 {
				t.Fatal("page download empty")
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pages checked")
	}
	if cluster.Repo.Requests() == 0 {
		t.Error("repository served nothing — unexpected for a planned split")
	}
}

func TestLocalServer404ForUnstored(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllRemote(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Nothing is stored: every local MO request must 404 …
	anyObj := w.Sites[0].Objects[0]
	resp, err := http.Get(cluster.SiteBases[0] + htmlrefs.MOPath(anyObj))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unstored MO served with %s", resp.Status)
	}
	// … while the repository serves it.
	resp, err = http.Get(cluster.RepoBase + htmlrefs.MOPath(anyObj))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("repository refused object: %s", resp.Status)
	}
}

func TestApplyPlacementLive(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllRemote(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := NewClient(w)
	pid := w.Sites[0].Pages[0]

	res, err := client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalChain.Objects != 0 {
		t.Fatalf("all-remote cluster served %d objects locally", res.LocalChain.Objects)
	}

	// Swap in the all-local placement on site 0 — a live plan refresh.
	if err := cluster.Sites[0].ApplyPlacement(model.AllLocal(w)); err != nil {
		t.Fatal(err)
	}
	res, err = client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteChain.Objects != 0 {
		t.Fatalf("after refresh %d objects still remote", res.RemoteChain.Objects)
	}
	if res.LocalChain.Objects != len(w.Pages[pid].Compulsory) {
		t.Fatalf("local chain has %d objects, want %d", res.LocalChain.Objects, len(w.Pages[pid].Compulsory))
	}
}

func TestAccessCounters(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := NewClient(w)
	pid := w.Sites[0].Pages[0]
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
			t.Fatal(err)
		}
	}
	ls := cluster.Sites[0]
	if got := ls.PageRequests(); got != n {
		t.Errorf("page requests = %d, want %d", got, n)
	}
	counts := ls.AccessCounts()
	if counts[pid] != n {
		t.Errorf("page %d count = %d, want %d", pid, counts[pid], n)
	}
	if ls.MORequests() == 0 {
		t.Error("no local MO requests recorded under all-local")
	}
}

func TestOptionalFetch(t *testing.T) {
	w := tinyWorkload(t)
	// Find a page with optional links.
	var pid workload.PageID = -1
	for j := range w.Pages {
		if len(w.Pages[j].Optional) > 0 {
			pid = workload.PageID(j)
			break
		}
	}
	if pid < 0 {
		t.Skip("tiny workload drew no optional pages")
	}
	cluster, err := StartCluster(w, model.AllRemote(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := NewClient(w)
	res, err := client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OptionalRefs) != len(w.Pages[pid].Optional) {
		t.Fatalf("client saw %d optional refs, want %d", len(res.OptionalRefs), len(w.Pages[pid].Optional))
	}
	// Fetch one optional object through the document's own link.
	doc, _, err := client.get(context.Background(), cluster.PageURL(pid), "")
	if err != nil {
		t.Fatal(err)
	}
	refs := htmlrefs.ParseRefs(doc)
	for _, r := range refs {
		if r.Optional {
			data, err := client.FetchObject(doc, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyObject(w, r.Object, data); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://127.0.0.1:8080/mo/3": "http://127.0.0.1:8080",
		"http://host/page/1":         "http://host",
		"http://host":                "http://host",
		"nonsense":                   "",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// BenchmarkLiveFetch measures one end-to-end page download through the real
// HTTP stack (loopback): HTML with on-the-fly rewrite, then the two
// parallel chains.
func BenchmarkLiveFetch(b *testing.B) {
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 6, 10
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 120, 40, 60
	cfg.MOClasses = []workload.SizeClass{{Frac: 1, Lo: 2 * units.KB, Hi: 16 * units.KB}}
	w := workload.MustGenerate(cfg, 66)
	cluster, err := StartCluster(w, model.AllLocal(w))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	client := NewClient(w)
	pid := w.Sites[0].Pages[0]
	url := cluster.PageURL(pid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.FetchPage(url, pid); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentClients hammers the cluster from several goroutines across
// sites while a plan refresh happens mid-flight — run under -race in CI.
func TestConcurrentClients(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartCluster(w, model.AllRemote(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := NewClient(w)
			site := g % w.NumSites()
			for i := 0; i < 5; i++ {
				pid := w.Sites[site].Pages[i%len(w.Sites[site].Pages)]
				if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Concurrent plan refresh on every site.
	wg.Add(1)
	go func() {
		defer wg.Done()
		fresh := model.AllLocal(w)
		for _, s := range cluster.Sites {
			if err := s.ApplyPlacement(fresh); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
