package webserve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// admissionCluster starts the tiny cluster with the admission stack armed
// under cfg (and an optional fault plan) and returns it with metrics on.
func admissionCluster(t *testing.T, cfg *admission.Config, plan *faults.Plan) *Cluster {
	t.Helper()
	w := tinyWorkload(t)
	cluster, err := StartClusterOptions(w, model.AllLocal(w), ClusterOptions{
		Metrics:   true,
		Admission: cfg,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	return cluster
}

// TestAdmissionShedsWith429AndRetryAfter drives more concurrency than a
// one-slot, one-queue admission gate can hold (injected latency keeps the
// admitted request in its slot): the overflow must be answered 429 with
// both Retry-After forms, while at least one request is served.
func TestAdmissionShedsWith429AndRetryAfter(t *testing.T) {
	plan := &faults.Plan{Sites: []faults.Spec{
		{Latency: 200 * time.Millisecond},
		{},
	}}
	cluster := admissionCluster(t, &admission.Config{
		InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: 1,
	}, plan)
	k := cluster.W.Sites[0].Objects[0]
	url := cluster.SiteBases[0] + "/mo/" + strconv.Itoa(int(k))

	const clients = 6
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Error("429 without Retry-After")
				} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
					t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
				}
				ms := resp.Header.Get(admission.RetryAfterMillisHeader)
				v, err := strconv.Atoi(ms)
				if err != nil || v < 50 || v >= 75 {
					t.Errorf("%s = %q, want the jittered hint in [50, 75)", admission.RetryAfterMillisHeader, ms)
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Error("admission gate served nothing")
	}
	if shed.Load() == 0 {
		t.Error("overflow was not shed")
	}
	if got := cluster.Metrics.Counter("admission.0.shed_by.queue").Value(); got == 0 {
		t.Error("admission.0.shed_by.queue never incremented")
	}
	if got := cluster.Metrics.Counter("admission.0.admitted").Value(); got == 0 {
		t.Error("admission.0.admitted never incremented")
	}
}

// TestAdmissionShedsDoomedDeadline pins deadline propagation server-side: a
// request whose X-Repl-Deadline already passed is shed at the door — 429,
// booked under shed_by.deadline, and the object handler is never reached.
func TestAdmissionShedsDoomedDeadline(t *testing.T) {
	cluster := admissionCluster(t, &admission.Config{}, nil)
	k := cluster.W.Sites[0].Objects[0]
	url := cluster.SiteBases[0] + "/mo/" + strconv.Itoa(int(k))

	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(admission.DeadlineHeader, admission.FormatDeadline(time.Now().Add(-time.Second)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expired deadline got %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if got := cluster.Metrics.Counter("admission.0.shed_by.deadline").Value(); got != 1 {
		t.Errorf("shed_by.deadline = %d, want 1", got)
	}
	if got := cluster.Metrics.Counter("site.0.mo_requests").Value(); got != 0 {
		t.Errorf("doomed request reached the object handler (%d serves)", got)
	}
}

// TestBrownoutDegradesPages walks the brownout controller up under a shed
// storm and verifies the degradation is visible end to end: the page is
// served with X-Repl-Brownout and the client surfaces it as
// PageResult.Brownout.
func TestBrownoutDegradesPages(t *testing.T) {
	cluster := admissionCluster(t, &admission.Config{
		BrownoutWindow: 75 * time.Millisecond,
	}, nil)
	k := cluster.W.Sites[0].Objects[0]
	moURL := cluster.SiteBases[0] + "/mo/" + strconv.Itoa(int(k))

	// A storm of doomed requests: every one sheds, so each brownout window
	// closes with a 100% shed rate and the tier climbs to MaxTier.
	doomed, err := http.NewRequest(http.MethodGet, moURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * time.Second)
	for cluster.SiteAdms[0].Tier() < admission.MaxTier {
		if time.Now().After(deadline) {
			t.Fatalf("brownout tier stuck at %d", cluster.SiteAdms[0].Tier())
		}
		doomed.Header.Set(admission.DeadlineHeader, admission.FormatDeadline(time.Now().Add(-time.Second)))
		resp, err := http.DefaultClient.Do(doomed)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	client := cluster.Client(quickOpts())
	client.Verify = true
	pid := cluster.W.Sites[0].Pages[0]
	res, err := client.FetchPage(cluster.PageURL(pid), pid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Brownout < 1 {
		t.Fatalf("page served at full fidelity (Brownout = %d) under max brownout pressure", res.Brownout)
	}
	if got := cluster.Metrics.Counter("site.0.brownout_pages").Value(); got == 0 {
		t.Error("site.0.brownout_pages never incremented")
	}
}

// TestRetryBudgetBoundsAmplification pins the client-side half of the
// overload contract: with the shared token bucket drained, a failing fetch
// stops retrying immediately instead of amplifying the storm.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		http.Error(rw, "boom", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	opts := quickOpts()
	opts.Retries = 3
	opts.BreakerThreshold = -1
	opts.Metrics = reg
	opts.RetryBudget = admission.NewRetryBudget(0.1, 1) // one token, earns nothing here
	c := NewClientOptions(tinyWorkload(t), opts)

	if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil); err == nil {
		t.Fatal("failing server returned no error")
	}
	// One initial attempt plus the single budgeted retry; the second retry
	// found the bucket empty.
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (budget must cap retries)", got)
	}
	if got := reg.Counter("client.retry_budget_exhausted").Value(); got != 1 {
		t.Errorf("retry_budget_exhausted = %d, want 1", got)
	}
}

// Test429DoesNotTripBreaker pins the classification rule the admission
// stack depends on: a shed is an authoritative answer from a live server
// that is policing its queue. Tripping breakers on 429s would turn a
// transient overload into a self-inflicted outage.
func Test429DoesNotTripBreaker(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		rw.Header().Set(admission.RetryAfterMillisHeader, "1")
		http.Error(rw, "overloaded", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	opts := quickOpts()
	opts.Retries = -1 // single attempt per call
	opts.BreakerThreshold = 1
	c := NewClientOptions(tinyWorkload(t), opts)

	for i := 0; i < 5; i++ {
		_, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil)
		if err == nil {
			t.Fatal("429 did not error")
		}
		if _, ok := err.(*breakerOpenError); ok {
			t.Fatalf("call %d: sheds tripped the breaker", i)
		}
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("server saw %d calls, want 5 — the circuit must stay closed through sheds", got)
	}
}

// TestBreakerHalfOpenSingleProbe pins the half-open state under
// concurrency: once the cooldown elapses, exactly one request becomes the
// probe; every concurrent loser fails fast without touching the network.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := &hostBreaker{}
	if tripped := b.onFailure(1, time.Now().Add(10*time.Millisecond)); !tripped {
		t.Fatal("threshold-1 failure did not trip")
	}
	if b.allow(time.Now()) {
		t.Fatal("open circuit allowed a request inside the cooldown")
	}
	time.Sleep(20 * time.Millisecond)

	const racers = 32
	var allowed atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow(time.Now()) {
				allowed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := allowed.Load(); got != 1 {
		t.Fatalf("half-open circuit let %d probes through, want exactly 1", got)
	}

	// While the probe is in flight, later arrivals still fail fast.
	if b.allow(time.Now()) {
		t.Fatal("second probe admitted while the first is in flight")
	}
}

// TestBreakerHalfOpenProbeOutcomes pins both probe endings: success closes
// the circuit for everyone; failure re-opens it immediately (no threshold
// count) for the full cooldown.
func TestBreakerHalfOpenProbeOutcomes(t *testing.T) {
	// Failure path: the failed probe re-opens regardless of threshold.
	b := &hostBreaker{}
	b.onFailure(1, time.Now().Add(time.Millisecond))
	time.Sleep(5 * time.Millisecond)
	if !b.allow(time.Now()) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if tripped := b.onFailure(99, time.Now().Add(time.Hour)); !tripped {
		t.Fatal("failed half-open probe did not re-open the circuit")
	}
	if b.allow(time.Now()) {
		t.Fatal("circuit admitted a request right after a failed probe")
	}

	// Success path: the probe's success resets state completely.
	b2 := &hostBreaker{}
	b2.onFailure(1, time.Now().Add(time.Millisecond))
	time.Sleep(5 * time.Millisecond)
	if !b2.allow(time.Now()) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	b2.onSuccess()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b2.allow(time.Now()) {
				t.Error("closed circuit refused a request")
			}
		}()
	}
	wg.Wait()
}

// TestHedgeShutdownLeavesNoGoroutines is the leak fence: hedge races left
// in flight when the cluster shuts down — losers mid-request, primaries
// stalled in injected latency — must all unwind. Any stranded leg would
// hold its page's context subtree and the client's counters forever.
func TestHedgeShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	w := tinyWorkload(t)
	plan := &faults.Plan{Sites: []faults.Spec{
		{Latency: 400 * time.Millisecond}, // primaries limp: hedges launch
		{},
	}}
	cluster, err := StartClusterOptions(w, model.AllLocal(w), ClusterOptions{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}

	opts := quickOpts()
	opts.FallbackBase = cluster.RepoBase
	opts.HedgeDelay = 5 * time.Millisecond
	client := cluster.Client(opts)
	client.Verify = true

	const fetches = 4
	var wg sync.WaitGroup
	for i := 0; i < fetches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pid := w.Sites[0].Pages[i%len(w.Sites[0].Pages)]
			// Errors are fine — the cluster may die under us; the contract
			// is that every leg unwinds.
			client.FetchPage(cluster.PageURL(pid), pid)
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // hedges launched, primaries still stalled
	if err := cluster.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()

	// Goroutines take a moment to observe closed connections; poll with a
	// deadline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // keep-alive pollers may linger briefly
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across shutdown: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
