package webserve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestBreakerTripsAndRecovers walks the circuit state machine against a
// controllable server: closed → open at the threshold (fast fails, no
// network contact) → half-open probe after the cooldown → closed on probe
// success, and straight back to open on a failed probe.
func TestBreakerTripsAndRecovers(t *testing.T) {
	var fail atomic.Bool
	var calls atomic.Int64
	fail.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		if fail.Load() {
			http.Error(rw, "boom", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(rw, "ok")
	}))
	defer srv.Close()

	opts := quickOpts()
	opts.Retries = -1 // one attempt per call: calls == getRetry invocations
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 150 * time.Millisecond
	c := NewClientOptions(tinyWorkload(t), opts)

	for i := 0; i < 2; i++ {
		if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil); err == nil {
			t.Fatal("failing server returned no error")
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("threshold phase made %d calls, want 2", calls.Load())
	}
	// Tripped: the next call must fail fast without touching the network.
	_, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil)
	if _, ok := err.(*breakerOpenError); !ok {
		t.Fatalf("open circuit returned %v, want breakerOpenError", err)
	}
	if !retryable(err) {
		t.Fatal("breakerOpenError must be retryable so the fallback route takes it")
	}
	if calls.Load() != 2 {
		t.Fatalf("open circuit still contacted the server (%d calls)", calls.Load())
	}

	// After the cooldown the half-open probe goes through and closes the
	// circuit. Cooldown is jittered in [d, 3d/2); wait past the ceiling.
	fail.Store(false)
	time.Sleep(2 * opts.BreakerCooldown)
	if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil); err != nil {
		t.Fatalf("closed circuit rejected a request: %v", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("recovery made %d calls, want 4", calls.Load())
	}

	// A failed half-open probe re-opens immediately (no threshold count).
	fail.Store(true)
	for i := 0; i < 2; i++ {
		c.getRetry(context.Background(), srv.URL+"/doc", nil, nil)
	}
	time.Sleep(2 * opts.BreakerCooldown)
	before := calls.Load()
	c.getRetry(context.Background(), srv.URL+"/doc", nil, nil) // probe, fails
	if calls.Load() != before+1 {
		t.Fatalf("probe made %d calls, want 1", calls.Load()-before)
	}
	if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/doc", nil, nil); err == nil {
		t.Fatal("circuit closed after a failed probe")
	} else if _, ok := err.(*breakerOpenError); !ok {
		t.Fatalf("failed probe left circuit answering %v, want breakerOpenError", err)
	}
	if calls.Load() != before+1 {
		t.Fatal("re-opened circuit contacted the server")
	}
}

// TestBreaker404DoesNotTrip pins the classification rule: a 404 is an
// authoritative answer from a live server and must never open the circuit.
func TestBreaker404DoesNotTrip(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		http.NotFound(rw, req)
	}))
	defer srv.Close()

	opts := quickOpts()
	opts.BreakerThreshold = 2
	c := NewClientOptions(tinyWorkload(t), opts)
	for i := 0; i < 5; i++ {
		if _, _, _, err := c.getRetry(context.Background(), srv.URL+"/mo/0", nil, nil); err == nil {
			t.Fatal("404 did not error")
		}
	}
	if calls.Load() != 5 {
		t.Fatalf("404s opened the circuit after %d calls", calls.Load())
	}
}

// TestBreakerFastFailStillFallsBack is the breaker's contract with the
// resilient client: a tripped circuit on a dead site converts retry storms
// into immediate repository fallback — every fetch still completes.
func TestBreakerFastFailStillFallsBack(t *testing.T) {
	w := tinyWorkload(t)
	cluster, err := StartClusterOptions(w, model.AllLocal(w), ClusterOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	opts := quickOpts()
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 5 * time.Second // stays open for the whole test
	client := cluster.Client(opts)
	client.Verify = true

	if err := cluster.KillSite(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pid := w.Sites[0].Pages[i]
		res, err := client.FetchPage(cluster.PageURL(pid), pid)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !res.DegradedHTML {
			t.Fatalf("fetch %d from killed site not degraded", i)
		}
	}
	if got := cluster.Metrics.Counter("client.breaker_trips").Value(); got == 0 {
		t.Fatal("dead site never tripped the breaker")
	}
	if got := cluster.Metrics.Counter("client.breaker_fastfails").Value(); got == 0 {
		t.Fatal("open circuit never fast-failed a request")
	}
}

// TestClientJitterIsolatedFromFaultPlans is the rng-isolation satellite:
// the client's backoff and breaker jitter run on Split-derived streams, so
// (a) a fault plan generated with the same seed is byte-identical whether
// or not a client consumed jitter draws, and (b) the client's draws are
// decorrelated from the root stream a fault plan with the same seed uses.
func TestClientJitterIsolatedFromFaultPlans(t *testing.T) {
	const seed = 11
	cfg := faults.DefaultPlanConfig()
	plan1, err := faults.Generate(cfg, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := plan1.Encode()
	if err != nil {
		t.Fatal(err)
	}

	opts := quickOpts()
	opts.JitterSeed = seed
	c := NewClientOptions(tinyWorkload(t), opts)
	for i := 1; i <= 16; i++ {
		c.backoff(i)
		c.breakerCooldown()
	}

	plan2, err := faults.Generate(cfg, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := plan2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("client jitter consumption shifted an identically-seeded fault plan")
	}

	// Decorrelation: the client must not draw from the root stream itself.
	// Under the old implementation (jitter = rng.New(seed)) the first
	// backoff equals this root-stream prediction; Split-derived streams
	// diverge immediately.
	root := rng.New(seed)
	d := opts.BackoffBase
	oldStyle := d/2 + time.Duration(root.Uniform(0, float64(d/2)))
	fresh := NewClientOptions(tinyWorkload(t), opts)
	if got := fresh.backoff(1); got == oldStyle {
		t.Fatalf("first backoff %v equals the root-stream draw — client is consuming the shared root", got)
	}
	// And the two client streams are themselves independent.
	a := rng.New(seed).Split(clientBackoffStream).Uniform(0, 1)
	b := rng.New(seed).Split(clientBreakerStream).Uniform(0, 1)
	if a == b {
		t.Fatal("backoff and breaker streams are correlated")
	}
}

// TestKillSiteRacesInFlightRequests is the lifecycle-race satellite: kill a
// site while large transfers are mid-body (run under -race in CI). The cut
// connections must surface as server-side write-error counters and client
// errors — never a silent truncation — and the site's /healthz must flip
// from answering to connection-refused within a probe window, then back
// after RestartSite.
func TestKillSiteRacesInFlightRequests(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 6, 10
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 120, 40, 60
	// Objects must dwarf the kernel's auto-tuned loopback socket buffers
	// (several MB each side): with the client paused mid-body, the handler's
	// io.Copy has to still be blocked in Write when the kill lands, or the
	// whole body drains into TCP buffers and the server never sees an error.
	cfg.MOClasses = []workload.SizeClass{{Frac: 1, Lo: 48 * units.MB, Hi: 64 * units.MB}}
	w := workload.MustGenerate(cfg, 66)
	cluster, err := StartClusterOptions(w, model.AllLocal(w), ClusterOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if resp, err := http.Get(cluster.SiteBases[0] + "/healthz"); err != nil {
		t.Fatalf("healthz before kill: %v", err)
	} else {
		resp.Body.Close()
	}

	const clients = 4
	inFlight := make(chan struct{}, clients)
	var truncated atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := w.Sites[0].Objects[g%len(w.Sites[0].Objects)]
			resp, err := http.Get(cluster.SiteBases[0] + htmlrefs.MOPath(k))
			if err != nil {
				inFlight <- struct{}{}
				truncated.Add(1)
				return
			}
			defer resp.Body.Close()
			head := make([]byte, 64*1024)
			if _, err := io.ReadFull(resp.Body, head); err != nil {
				inFlight <- struct{}{}
				truncated.Add(1)
				return
			}
			inFlight <- struct{}{} // mid-body: the kill races the rest
			rest, err := io.ReadAll(resp.Body)
			if err != nil || int64(len(head)+len(rest)) != int64(w.ObjectSize(k)) {
				truncated.Add(1)
			}
		}(g)
	}
	for g := 0; g < clients; g++ {
		<-inFlight
	}
	if err := cluster.KillSite(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if truncated.Load() == 0 {
		t.Fatal("kill mid-transfer cut no client — transfers completed before the kill")
	}
	// The handler goroutines observe the cut and bump a counter after the
	// clients do — poll rather than read once. The kill cancels in-flight
	// request contexts, so the ctx-aware body copy books the cut as an
	// aborted write; a raw socket error still lands in write_errors.
	errDeadline := time.Now().Add(2 * time.Second)
	for cluster.Metrics.Counter("site.0.write_errors").Value()+
		cluster.Metrics.Counter("server.aborted_writes").Value() == 0 {
		if time.Now().After(errDeadline) {
			t.Fatal("cut transfers incremented neither site.0.write_errors nor server.aborted_writes")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The site's health endpoint must flip within a probe window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(cluster.SiteBases[0] + "/healthz")
		if err != nil {
			break // flipped: connection refused
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("killed site still answered /healthz after the probe window")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cluster.RestartSite(0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(cluster.SiteBases[0] + "/healthz")
	if err != nil {
		t.Fatalf("healthz after restart: %v", err)
	}
	resp.Body.Close()
}
