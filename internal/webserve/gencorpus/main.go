// Command gencorpus regenerates the committed seed corpus for
// webserve's FuzzPayloadRoundTrip. Run from the repository root:
//
//	go run ./internal/webserve/gencorpus
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/units"
	"repro/internal/webserve"
	"repro/internal/workload"
)

func main() {
	cfg := workload.SmallConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 6, 10
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 120, 40, 60
	cfg.MOClasses = []workload.SizeClass{
		{Frac: 0.5, Lo: 2 * units.KB, Hi: 8 * units.KB},
		{Frac: 0.5, Lo: 8 * units.KB, Hi: 32 * units.KB},
	}
	w := workload.MustGenerate(cfg, 66)
	dir := "internal/webserve/testdata/fuzz/FuzzPayloadRoundTrip"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println(name)
	}
	repo, err := io.ReadAll(webserve.ObjectReader(w, webserve.RepoSource, 0))
	if err != nil {
		panic(err)
	}
	site, err := io.ReadAll(webserve.ObjectReader(w, 1, 3))
	if err != nil {
		panic(err)
	}
	write("genuine-repo", repo)
	write("genuine-site", site)
	flipped := append([]byte(nil), site...)
	flipped[len(flipped)/2] ^= 0x01
	write("bit-flip", flipped)
	write("truncated", repo[:len(repo)/2])
	hdr := webserve.EncodePayloadHeader(webserve.PayloadHeader{
		Object: 9999999, Source: 127, Seed: ^uint64(0), Length: 1 << 33, Sum: 1,
	})
	write("wide-header", hdr)
	write("padding-games", []byte("REPL1 obj=00 src=-1 seed=0000000000000000 len=096 sum=00000000\n"))
}
