package webserve

import (
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/workload"
)

// TestAccessTapFeedsEstimator exercises the live access-log tap under
// concurrent load: a cluster started with ClusterOptions.AccessTap must
// deliver exactly one estimator observation per served page view, from
// every serving goroutine, without races (the -race CI stages run this)
// and in agreement with the servers' own per-page counters.
func TestAccessTapFeedsEstimator(t *testing.T) {
	w := tinyWorkload(t)
	// Enormous half-life so weights are effectively raw counts and can be
	// compared against the servers' integer counters.
	est, err := estimate.New(w, estimate.Config{HalfLife: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := StartClusterOptions(w, plannedPlacement(t, w), ClusterOptions{AccessTap: est})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Concurrent clients hammering every site's pages.
	const clients = 8
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := NewClient(w)
			for r := 0; r < rounds; r++ {
				for i := range w.Sites {
					for _, pid := range w.Sites[i].Pages {
						if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	snap := est.Snapshot(1e6)
	for i, ls := range cluster.Sites {
		served := ls.AccessCounts()
		var estimated int64
		var servedTotal int64
		for _, se := range snap.Sites {
			if se.Site != workload.SiteID(i) {
				continue
			}
			for _, pw := range se.Pages {
				// Round the decayed weight back to an integer count; with the
				// huge half-life decay is negligible over the test's runtime.
				estimated += int64(pw.Weight + 0.5)
			}
		}
		for _, n := range served {
			servedTotal += n
		}
		if servedTotal == 0 {
			t.Fatalf("site %d served nothing", i)
		}
		if estimated != servedTotal {
			t.Errorf("site %d: estimator saw %d views, server counted %d", i, estimated, servedTotal)
		}
	}
}
