package webserve

import (
	"fmt"
	"net"
)

// listenLoopback opens an ephemeral-port TCP listener on 127.0.0.1,
// falling back to [::1] on IPv4-less hosts.
func listenLoopback() (net.Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err == nil {
		return ln, nil
	}
	ln6, err6 := net.Listen("tcp", "[::1]:0")
	if err6 == nil {
		return ln6, nil
	}
	return nil, fmt.Errorf("webserve: cannot listen on loopback: %w / %v", err, err6)
}
