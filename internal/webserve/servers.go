package webserve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Repository is the central multimedia repository's HTTP handler: it serves
// every object at /mo/<id> and counts requests.
type Repository struct {
	w        *workload.Workload
	requests atomic.Int64

	// Telemetry counters; nil (no-op) unless the cluster enables metrics.
	cRequests, cBytes, cMisses *telemetry.Counter
}

// NewRepository builds the repository handler.
func NewRepository(w *workload.Workload) *Repository {
	return &Repository{w: w}
}

// Requests returns the number of MO requests served.
func (r *Repository) Requests() int64 { return r.requests.Load() }

// ServeHTTP implements http.Handler.
func (r *Repository) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	k, ok := htmlrefs.ParseMOPath(req.URL.Path)
	if !ok || int(k) >= r.w.NumObjects() {
		r.cMisses.Inc()
		http.NotFound(rw, req)
		return
	}
	r.requests.Add(1)
	r.cRequests.Inc()
	r.cBytes.Add(int64(r.w.ObjectSize(k)))
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.FormatInt(int64(r.w.ObjectSize(k)), 10))
	io.Copy(rw, ObjectReader(r.w, k))
}

// LocalServer is one site's HTTP handler: it serves its hosted pages at
// /page/<id> — rewriting MO URLs on the fly per its reference database —
// and its replicated objects at /mo/<id>. Objects it does not store are
// 404s: the placement is authoritative, exactly as a misrouted client would
// experience in the paper's system. Page accesses are counted per page to
// feed frequency estimation (Section 2's "statistics collected").
type LocalServer struct {
	w    *workload.Workload
	site workload.SiteID
	db   *htmlrefs.RefDB

	mu        sync.RWMutex
	placement *model.Placement
	base      string // this server's external base URL, set once serving

	pageHits  sync.Map // workload.PageID -> *atomic.Int64
	moHits    atomic.Int64
	pageCount atomic.Int64

	// Telemetry counters; nil (no-op) unless the cluster enables metrics.
	cPages, cMOs, cBytes, cMisses *telemetry.Counter
}

// NewLocalServer builds the site's handler from a placement. repoBase is
// the repository's external base URL used in stored documents.
func NewLocalServer(w *workload.Workload, site workload.SiteID, p *model.Placement, repoBase string) (*LocalServer, error) {
	db, err := htmlrefs.BuildRefDB(w, site, p, repoBase)
	if err != nil {
		return nil, err
	}
	return &LocalServer{w: w, site: site, db: db, placement: p}, nil
}

// SetBase records the server's external base URL (e.g. http://127.0.0.1:
// 8081) used when rewriting local references. Must be called before
// serving.
func (s *LocalServer) SetBase(base string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.base = base
}

// Base returns the configured base URL.
func (s *LocalServer) Base() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// ApplyPlacement swaps in a new placement (a plan refresh): the reference
// database and the replica set update atomically with respect to readers.
func (s *LocalServer) ApplyPlacement(p *model.Placement) error {
	if err := s.db.ApplyPlacement(s.w, p); err != nil {
		return err
	}
	s.mu.Lock()
	s.placement = p
	s.mu.Unlock()
	return nil
}

// Site returns the server's site ID.
func (s *LocalServer) Site() workload.SiteID { return s.site }

// PageRequests returns the total page requests served.
func (s *LocalServer) PageRequests() int64 { return s.pageCount.Load() }

// MORequests returns the MO requests served locally.
func (s *LocalServer) MORequests() int64 { return s.moHits.Load() }

// AccessCounts snapshots the per-page access counters.
func (s *LocalServer) AccessCounts() map[workload.PageID]int64 {
	out := make(map[workload.PageID]int64)
	s.pageHits.Range(func(key, value interface{}) bool {
		out[key.(workload.PageID)] = value.(*atomic.Int64).Load()
		return true
	})
	return out
}

func (s *LocalServer) countPage(j workload.PageID) {
	s.pageCount.Add(1)
	v, _ := s.pageHits.LoadOrStore(j, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// ServeHTTP implements http.Handler.
func (s *LocalServer) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if j, ok := htmlrefs.ParsePagePath(req.URL.Path); ok {
		doc, ok := s.db.Serve(j, s.Base())
		if !ok {
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.countPage(j)
		s.cPages.Inc()
		s.cBytes.Add(int64(len(doc)))
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		rw.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		rw.Write(doc)
		return
	}
	if k, ok := htmlrefs.ParseMOPath(req.URL.Path); ok {
		if int(k) >= s.w.NumObjects() {
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.mu.RLock()
		stored := s.placement.IsStored(s.site, k)
		s.mu.RUnlock()
		if !stored {
			// A miss here means a client asked for an unreplicated object —
			// the placement is authoritative, so this counts as a hit-miss
			// event, not a routing bug.
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.moHits.Add(1)
		s.cMOs.Inc()
		s.cBytes.Add(int64(s.w.ObjectSize(k)))
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", strconv.FormatInt(int64(s.w.ObjectSize(k)), 10))
		io.Copy(rw, ObjectReader(s.w, k))
		return
	}
	s.cMisses.Inc()
	http.NotFound(rw, req)
}

// Cluster is a running deployment: the repository plus one HTTP server per
// site, all on loopback listeners.
type Cluster struct {
	W          *workload.Workload
	Repo       *Repository
	RepoBase   string
	Sites      []*LocalServer
	SiteBases  []string
	httpServer []*http.Server
	closers    []func() error

	// Metrics is the cluster-wide registry behind every server's /metrics
	// endpoint; nil unless ClusterOptions.Metrics was set.
	Metrics *telemetry.Registry
}

// StartCluster listens on ephemeral loopback ports for the repository and
// every site, serving under the given placement with no observability
// extras. Call Close when done.
func StartCluster(w *workload.Workload, p *model.Placement) (*Cluster, error) {
	return StartClusterOptions(w, p, ClusterOptions{})
}

// StartClusterOptions is StartCluster with the observability wiring of
// ClusterOptions: a shared metrics registry served at /metrics on every
// server, and optional pprof endpoints.
func StartClusterOptions(w *workload.Workload, p *model.Placement, opts ClusterOptions) (*Cluster, error) {
	c := &Cluster{W: w}
	if opts.Metrics {
		c.Metrics = telemetry.NewRegistry()
	}

	repo := NewRepository(w)
	repo.setTelemetry(c.Metrics)
	repoBase, stop, err := serve(repo, c.Metrics, opts.Pprof)
	if err != nil {
		return nil, err
	}
	c.Repo = repo
	c.RepoBase = repoBase
	c.closers = append(c.closers, stop)

	for i := 0; i < w.NumSites(); i++ {
		ls, err := NewLocalServer(w, workload.SiteID(i), p, repoBase)
		if err != nil {
			c.Close()
			return nil, err
		}
		ls.setTelemetry(c.Metrics)
		base, stop, err := serve(ls, c.Metrics, opts.Pprof)
		if err != nil {
			c.Close()
			return nil, err
		}
		ls.SetBase(base)
		c.Sites = append(c.Sites, ls)
		c.SiteBases = append(c.SiteBases, base)
		c.closers = append(c.closers, stop)
	}
	return c, nil
}

// serve starts an http.Server on an ephemeral loopback port and returns its
// base URL and a stopper. A non-nil registry adds /metrics (and optionally
// pprof) routes in front of the handler.
func serve(h http.Handler, reg *telemetry.Registry, withPprof bool) (base string, stop func() error, err error) {
	ln, err := listenLoopback()
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: wrapMux(h, reg, withPprof)}
	go srv.Serve(ln)
	return fmt.Sprintf("http://%s", ln.Addr().String()), srv.Close, nil
}

// Close shuts every server down.
func (c *Cluster) Close() error {
	var first error
	for _, stop := range c.closers {
		if err := stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PageURL returns the URL of page j on its hosting site.
func (c *Cluster) PageURL(j workload.PageID) string {
	site := c.W.Pages[j].Site
	return c.SiteBases[site] + htmlrefs.PagePath(j)
}
