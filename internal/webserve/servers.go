package webserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accesslog"
	"repro/internal/admission"
	"repro/internal/faults"
	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Repository is the central multimedia repository's HTTP handler: it serves
// every object at /mo/<id> and — as the system's authoritative always-on
// root — every page's master copy at /page/<id>, rendered with all
// references pointing back at the repository itself. Clients normally never
// ask it for pages; the resilient client does exactly that when a page's
// hosting site is down, completing the view via Eq. 5's remote chain.
type Repository struct {
	w        *workload.Workload
	requests atomic.Int64
	pages    atomic.Int64

	mu   sync.RWMutex
	base string // external base URL, set once serving

	// Telemetry counters; nil (no-op) unless the cluster enables metrics.
	cRequests, cPages, cBytes, cMisses, cWriteErrs *telemetry.Counter
	cAborted                                       *telemetry.Counter
}

// NewRepository builds the repository handler.
func NewRepository(w *workload.Workload) *Repository {
	return &Repository{w: w}
}

// Requests returns the number of MO requests served.
func (r *Repository) Requests() int64 { return r.requests.Load() }

// PageRequests returns the number of degraded-mode page requests served.
func (r *Repository) PageRequests() int64 { return r.pages.Load() }

// SetBase records the repository's external base URL, used when rendering
// master-copy pages. Must be called before serving.
func (r *Repository) SetBase(base string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base = base
}

// Base returns the configured base URL.
func (r *Repository) Base() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.base
}

// ServeHTTP implements http.Handler.
func (r *Repository) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if k, ok := htmlrefs.ParseMOPath(req.URL.Path); ok && int(k) < r.w.NumObjects() {
		r.requests.Add(1)
		r.cRequests.Inc()
		r.cBytes.Add(int64(r.w.ObjectSize(k)))
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", strconv.FormatInt(int64(r.w.ObjectSize(k)), 10))
		if _, err := copyCtx(req.Context(), rw, ObjectReader(r.w, RepoSource, k)); err != nil {
			countWriteErr(req, r.cAborted, r.cWriteErrs)
		}
		return
	}
	if j, ok := htmlrefs.ParsePagePath(req.URL.Path); ok && int(j) < r.w.NumPages() {
		// The master copy: every reference targets the repository, so a
		// degraded client completes the whole view against the root.
		doc := htmlrefs.RenderPage(r.w, j, r.Base())
		r.pages.Add(1)
		r.cPages.Inc()
		r.cBytes.Add(int64(len(doc)))
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		rw.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		if _, err := rw.Write(doc); err != nil {
			countWriteErr(req, r.cAborted, r.cWriteErrs)
		}
		return
	}
	r.cMisses.Inc()
	http.NotFound(rw, req)
}

// copyCtx streams src to dst in chunks, checking the request context
// between chunks: a client that disconnected mid-body stops consuming
// server work instead of having the full object pushed into a dead
// connection.
func copyCtx(ctx context.Context, dst io.Writer, src io.Reader) (int64, error) {
	buf := make([]byte, 32*1024)
	var written int64
	for {
		select {
		case <-ctx.Done():
			return written, ctx.Err()
		default:
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			wn, werr := dst.Write(buf[:n])
			written += int64(wn)
			if werr != nil {
				return written, werr
			}
		}
		if rerr == io.EOF {
			return written, nil
		}
		if rerr != nil {
			return written, rerr
		}
	}
}

// countWriteErr classifies a failed body write: a done request context is
// a client that went away (aborted), anything else a transport failure.
func countWriteErr(req *http.Request, aborted, writeErrs *telemetry.Counter) {
	if req.Context().Err() != nil {
		aborted.Inc()
		return
	}
	writeErrs.Inc()
}

// LocalServer is one site's HTTP handler: it serves its hosted pages at
// /page/<id> — rewriting MO URLs on the fly per its reference database —
// and its replicated objects at /mo/<id>. Objects it does not store are
// 404s: the placement is authoritative, exactly as a misrouted client would
// experience in the paper's system. Page accesses are counted per page to
// feed frequency estimation (Section 2's "statistics collected").
type LocalServer struct {
	w        *workload.Workload
	site     workload.SiteID
	db       *htmlrefs.RefDB
	repoBase string

	mu        sync.RWMutex
	placement *model.Placement
	base      string // this server's external base URL, set once serving

	pageHits  sync.Map // workload.PageID -> *atomic.Int64
	moHits    atomic.Int64
	pageCount atomic.Int64

	// Telemetry counters; nil (no-op) unless the cluster enables metrics.
	cPages, cMOs, cBytes, cMisses, cWriteErrs *telemetry.Counter
	cAborted                                  *telemetry.Counter
	cBrownoutPages, cBrownoutDropped          *telemetry.Counter

	// Access-log tap; nil unless ClusterOptions.AccessTap was set. tapClock
	// reports cluster uptime in seconds for the tap's timestamps.
	tap      accesslog.Tap
	tapClock func() float64

	// adm is the server's admission layer; nil unless the cluster armed
	// ClusterOptions.Admission. Its brownout tier governs page fidelity.
	adm *admission.Server
}

// NewLocalServer builds the site's handler from a placement. repoBase is
// the repository's external base URL used in stored documents.
func NewLocalServer(w *workload.Workload, site workload.SiteID, p *model.Placement, repoBase string) (*LocalServer, error) {
	db, err := htmlrefs.BuildRefDB(w, site, p, repoBase)
	if err != nil {
		return nil, err
	}
	return &LocalServer{w: w, site: site, db: db, repoBase: repoBase, placement: p}, nil
}

// SetBase records the server's external base URL (e.g. http://127.0.0.1:
// 8081) used when rewriting local references. Must be called before
// serving.
func (s *LocalServer) SetBase(base string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.base = base
}

// Base returns the configured base URL.
func (s *LocalServer) Base() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// ApplyPlacement swaps in a new placement (a plan refresh): the reference
// database and the replica set update atomically with respect to readers.
func (s *LocalServer) ApplyPlacement(p *model.Placement) error {
	if err := s.db.ApplyPlacement(s.w, p); err != nil {
		return err
	}
	s.mu.Lock()
	s.placement = p
	s.mu.Unlock()
	return nil
}

// Rehome adopts a repair (or recovery) plan: the reference database is
// rebuilt against w2's page assignment for this site — gaining or losing
// pages relative to construction time — and the plan's placement governs
// the replica set from here on. w2 must index objects and sites identically
// to the construction workload, which repair.Compute's re-homed clones do;
// the server's own workload pointer is deliberately NOT swapped (ServeHTTP
// reads it lock-free, and only its object table — identical across the
// clones — matters there).
func (s *LocalServer) Rehome(w2 *workload.Workload, p *model.Placement) error {
	if err := s.db.Rebuild(w2, p, s.repoBase); err != nil {
		return err
	}
	s.mu.Lock()
	s.placement = p
	s.mu.Unlock()
	return nil
}

// Site returns the server's site ID.
func (s *LocalServer) Site() workload.SiteID { return s.site }

// PageRequests returns the total page requests served.
func (s *LocalServer) PageRequests() int64 { return s.pageCount.Load() }

// MORequests returns the MO requests served locally.
func (s *LocalServer) MORequests() int64 { return s.moHits.Load() }

// AccessCounts snapshots the per-page access counters.
func (s *LocalServer) AccessCounts() map[workload.PageID]int64 {
	out := make(map[workload.PageID]int64)
	s.pageHits.Range(func(key, value interface{}) bool {
		out[key.(workload.PageID)] = value.(*atomic.Int64).Load()
		return true
	})
	return out
}

func (s *LocalServer) countPage(j workload.PageID) {
	s.pageCount.Add(1)
	v, _ := s.pageHits.LoadOrStore(j, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
	if s.tap != nil {
		s.tap.Observe(s.site, j, s.tapClock())
	}
}

// setTap arms the access-log tap. Must be called before serving (countPage
// reads the fields lock-free).
func (s *LocalServer) setTap(tap accesslog.Tap, clock func() float64) {
	s.tap = tap
	s.tapClock = clock
}

// ServeHTTP implements http.Handler.
func (s *LocalServer) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if j, ok := htmlrefs.ParsePagePath(req.URL.Path); ok {
		// Brownout: under sustained shed pressure the admission layer's
		// tier degrades page fidelity — lowest-weight optional references
		// dropped first — before the server refuses pages outright.
		tier := 0
		if s.adm != nil {
			tier = s.adm.Tier()
		}
		doc, dropped, ok := s.db.ServeTier(j, s.Base(), tier)
		if !ok {
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.countPage(j)
		s.cPages.Inc()
		s.cBytes.Add(int64(len(doc)))
		if tier > 0 {
			rw.Header().Set(admission.BrownoutHeader, strconv.Itoa(tier))
			s.cBrownoutPages.Inc()
			s.cBrownoutDropped.Add(int64(dropped))
		}
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		rw.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		if _, err := rw.Write(doc); err != nil {
			countWriteErr(req, s.cAborted, s.cWriteErrs)
		}
		return
	}
	if k, ok := htmlrefs.ParseMOPath(req.URL.Path); ok {
		if int(k) >= s.w.NumObjects() {
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.mu.RLock()
		stored := s.placement.IsStored(s.site, k)
		s.mu.RUnlock()
		if !stored {
			// A miss here means a client asked for an unreplicated object —
			// the placement is authoritative, so this counts as a hit-miss
			// event, not a routing bug.
			s.cMisses.Inc()
			http.NotFound(rw, req)
			return
		}
		s.moHits.Add(1)
		s.cMOs.Inc()
		s.cBytes.Add(int64(s.w.ObjectSize(k)))
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", strconv.FormatInt(int64(s.w.ObjectSize(k)), 10))
		if _, err := copyCtx(req.Context(), rw, ObjectReader(s.w, int(s.site), k)); err != nil {
			countWriteErr(req, s.cAborted, s.cWriteErrs)
		}
		return
	}
	s.cMisses.Inc()
	http.NotFound(rw, req)
}

// Cluster is a running deployment: the repository plus one HTTP server per
// site, all on loopback listeners. The cluster supports chaos drills
// (ClusterOptions.Faults, KillSite/RestartSite) and shuts down gracefully:
// Close drains in-flight responses under a deadline instead of cutting
// connections mid-body.
type Cluster struct {
	W         *workload.Workload
	Repo      *Repository
	RepoBase  string
	Sites     []*LocalServer
	SiteBases []string

	// Metrics is the cluster-wide registry behind every server's /metrics
	// endpoint; nil unless ClusterOptions.Metrics was set.
	Metrics *telemetry.Registry

	// Tracer emits server-side spans into ClusterOptions.Trace; nil unless
	// tracing was armed. Cluster.Client derives its client tracer from it so
	// client and server spans share one ID stream and epoch.
	Tracer *trace.Tracer
	// Journal is the flight recorder served at /debug/journal; nil unless
	// ClusterOptions.Journal was set.
	Journal *trace.Journal

	// RepoAdm / SiteAdms are the per-server admission layers; nil unless
	// ClusterOptions.Admission armed overload protection.
	RepoAdm  *admission.Server
	SiteAdms []*admission.Server

	start           time.Time
	shutdownTimeout time.Duration

	mu           sync.Mutex
	repoSrv      *http.Server
	siteSrvs     []*http.Server    // nil entries are killed sites
	siteHandlers []http.Handler    // wrapped handlers, reused on restart
	siteAddrs    []string          // last bound address per site
	routes       []workload.SiteID // page -> serving site; nil until ApplyPlan
	siteInjs     []*faults.Injector
	curW         *workload.Workload // workload of the last applied plan
	curP         *model.Placement   // the live placement
}

// StartCluster listens on ephemeral loopback ports for the repository and
// every site, serving under the given placement with no observability
// extras. Call Close when done.
func StartCluster(w *workload.Workload, p *model.Placement) (*Cluster, error) {
	return StartClusterOptions(w, p, ClusterOptions{})
}

// StartClusterOptions is StartCluster with the observability and chaos
// wiring of ClusterOptions: a shared metrics registry served at /metrics on
// every server, optional pprof endpoints, and optional deterministic fault
// injection. Every server additionally answers /healthz (200 "ok"), routed
// through the fault middleware so probes observe injected outages.
func StartClusterOptions(w *workload.Workload, p *model.Placement, opts ClusterOptions) (*Cluster, error) {
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Cluster{W: w, start: time.Now(), shutdownTimeout: opts.ShutdownTimeout, curW: w, curP: p}
	if c.shutdownTimeout <= 0 {
		c.shutdownTimeout = 5 * time.Second
	}
	if opts.Metrics {
		c.Metrics = telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(c.Metrics)
	}
	c.Tracer = trace.NewTracer(opts.Trace, opts.TraceSeed, trace.KindServer)
	c.Journal = opts.Journal
	// The outage-window clock: elapsed time since the cluster (and with it
	// the fault plan) was armed.
	clock := func() time.Duration { return time.Since(c.start) }

	repo := NewRepository(w)
	repo.setTelemetry(c.Metrics)
	c.RepoAdm = c.newAdmission(opts, 0, "repo", clock)
	repoHandler := c.buildHandler(repo, opts, opts.Faults.RepoInjector(), "faults.repo.", "repo", clock, c.RepoAdm)
	repoBase, repoSrv, err := serve(repoHandler)
	if err != nil {
		return nil, err
	}
	c.Repo = repo
	c.RepoBase = repoBase
	c.repoSrv = repoSrv
	repo.SetBase(repoBase)

	for i := 0; i < w.NumSites(); i++ {
		ls, err := NewLocalServer(w, workload.SiteID(i), p, repoBase)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		ls.setTelemetry(c.Metrics)
		if opts.AccessTap != nil {
			ls.setTap(opts.AccessTap, func() float64 { return time.Since(c.start).Seconds() })
		}
		adm := c.newAdmission(opts, uint64(i)+1, strconv.Itoa(i), clock)
		ls.adm = adm
		c.SiteAdms = append(c.SiteAdms, adm)
		inj := opts.Faults.SiteInjector(i)
		h := c.buildHandler(ls, opts, inj, fmt.Sprintf("faults.site.%d.", i), strconv.Itoa(i), clock, adm)
		base, srv, err := serve(h)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		ls.SetBase(base)
		c.Sites = append(c.Sites, ls)
		c.SiteBases = append(c.SiteBases, base)
		c.siteSrvs = append(c.siteSrvs, srv)
		c.siteHandlers = append(c.siteHandlers, h)
		c.siteAddrs = append(c.siteAddrs, addrOf(base))
		c.siteInjs = append(c.siteInjs, inj)
	}
	return c, nil
}

// buildHandler assembles one server's handler chain, innermost first:
// application → /healthz → fault injection → admission → trace →
// /metrics + pprof + journal. Health probes pass through the fault
// middleware (a dying site must look like one), while the observability
// endpoints stay outside it — chaos is precisely when /metrics must keep
// answering. Admission wraps the fault layer so an admitted request holds
// its concurrency slot across fault-injected latency: a limping server's
// queue backs up and the CoDel law starts shedding, exactly the overload
// signal the layer exists to act on. (Health probes are therefore
// sheddable too; the controller treats 429 as healthy-but-shedding.) The
// trace middleware wraps everything so both injected faults and admission
// sheds are visible in the serve spans.
func (c *Cluster) buildHandler(app http.Handler, opts ClusterOptions, inj *faults.Injector, prefix, siteName string, clock func() time.Duration, adm *admission.Server) http.Handler {
	h := withHealthz(app)
	if inj != nil && !inj.Spec().Quiet() {
		m := faults.MetricsFor(c.Metrics, prefix)
		m.Journal, m.Site = c.Journal, siteName
		h = faults.Middleware(inj, clock, m, h)
	}
	if adm != nil {
		h = adm.Middleware(h)
	}
	h = traceMiddleware(c.Tracer, siteName, h)
	return wrapMux(h, c.Metrics, opts.Pprof, c.Journal)
}

// newAdmission builds one server's admission layer, or nil when overload
// protection is not armed. seedOffset keeps each server's Retry-After
// jitter stream disjoint (0 = repository, i+1 = site i).
func (c *Cluster) newAdmission(opts ClusterOptions, seedOffset uint64, siteName string, clock func() time.Duration) *admission.Server {
	if opts.Admission == nil {
		return nil
	}
	cfg := *opts.Admission
	cfg.Seed += seedOffset
	m := admission.MetricsFor(c.Metrics, "admission."+siteName+".")
	m.Journal, m.Site = c.Journal, siteName
	return admission.NewServer(cfg, clock, m)
}

// traceMiddleware emits one "serve" span per request that carries the
// X-Repl-Trace header, parented under the propagated client span.
// Requests without the header (health probes, untraced clients) pass
// through untouched. Fault-injected aborts (panic with ErrAbortHandler)
// still end the span — marked reason=abort — before re-panicking.
func traceMiddleware(tr *trace.Tracer, siteName string, h http.Handler) http.Handler {
	if tr == nil {
		return h
	}
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		tid, sid, ok := trace.ParseHeader(req.Header.Get(trace.Header))
		if !ok {
			h.ServeHTTP(rw, req)
			return
		}
		sp := tr.StartRemote(trace.SpanServe, tid, sid)
		sp.SetAttr(trace.A(trace.AttrSite, siteName), trace.A("path", req.URL.Path))
		sw := &statusCapture{ResponseWriter: rw, code: http.StatusOK}
		defer func() {
			if r := recover(); r != nil {
				sp.SetAttr(trace.A(trace.AttrReason, "abort"))
				sp.End()
				panic(r)
			}
			sp.SetAttr(trace.I(trace.AttrStatus, int64(sw.code)))
			sp.End()
		}()
		h.ServeHTTP(sw, req)
	})
}

// statusCapture records the response status for the serve span.
type statusCapture struct {
	http.ResponseWriter
	code int
}

func (s *statusCapture) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// withHealthz answers /healthz ahead of the application handler.
func withHealthz(h http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/healthz" {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = io.WriteString(rw, "ok\n")
			return
		}
		h.ServeHTTP(rw, req)
	})
}

// serve starts an http.Server on an ephemeral loopback port and returns its
// base URL and the server for lifecycle control.
func serve(h http.Handler) (base string, srv *http.Server, err error) {
	ln, err := listenLoopback()
	if err != nil {
		return "", nil, err
	}
	srv = &http.Server{Handler: h}
	go srv.Serve(ln)
	return fmt.Sprintf("http://%s", ln.Addr().String()), srv, nil
}

// addrOf strips the scheme from a base URL.
func addrOf(base string) string {
	const scheme = "http://"
	if len(base) > len(scheme) && base[:len(scheme)] == scheme {
		return base[len(scheme):]
	}
	return base
}

// KillSite hard-stops site i's HTTP server — listener closed, in-flight
// connections cut — simulating a crashed machine. Requests to the site then
// fail with connection errors until RestartSite. The LocalServer state
// (counters, reference database) survives, as a remounted disk would.
func (c *Cluster) KillSite(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.siteSrvs) {
		return fmt.Errorf("webserve: no site %d", i)
	}
	srv := c.siteSrvs[i]
	if srv == nil {
		return fmt.Errorf("webserve: site %d is already down", i)
	}
	c.siteSrvs[i] = nil
	return srv.Close()
}

// RestartSite brings a killed site back, preferring its previous address so
// already-rewritten documents keep working; if the port was reclaimed it
// falls back to a fresh ephemeral one and updates SiteBases.
func (c *Cluster) RestartSite(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.siteSrvs) {
		return fmt.Errorf("webserve: no site %d", i)
	}
	if c.siteSrvs[i] != nil {
		return fmt.Errorf("webserve: site %d is not down", i)
	}
	ln, err := net.Listen("tcp", c.siteAddrs[i])
	if err != nil {
		if ln, err = listenLoopback(); err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: c.siteHandlers[i]}
	go srv.Serve(ln)
	c.siteSrvs[i] = srv
	base := fmt.Sprintf("http://%s", ln.Addr().String())
	if base != c.SiteBases[i] {
		c.SiteBases[i] = base
		c.Sites[i].SetBase(base)
		c.siteAddrs[i] = addrOf(base)
	}
	return nil
}

// SiteDown reports whether site i is currently killed.
func (c *Cluster) SiteDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.siteSrvs) && c.siteSrvs[i] == nil
}

// Shutdown stops every server gracefully, letting in-flight responses
// drain until ctx expires; servers still busy at the deadline are then
// hard-closed. The first error (other than the expected closed-server
// state) is returned.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	srvs := make([]*http.Server, 0, len(c.siteSrvs)+1)
	if c.repoSrv != nil {
		srvs = append(srvs, c.repoSrv)
		c.repoSrv = nil
	}
	for i, srv := range c.siteSrvs {
		if srv != nil {
			srvs = append(srvs, srv)
			c.siteSrvs[i] = nil
		}
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, len(srvs))
	for i, srv := range srvs {
		wg.Add(1)
		go func(i int, srv *http.Server) {
			defer wg.Done()
			if err := srv.Shutdown(ctx); err != nil {
				_ = srv.Close() // deadline hit: cut what is left
				errs[i] = err
			}
		}(i, srv)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the cluster down gracefully under the configured deadline
// (ClusterOptions.ShutdownTimeout, default 5s).
func (c *Cluster) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.shutdownTimeout)
	defer cancel()
	return c.Shutdown(ctx)
}

// ApplyPlan pushes a repaired (or recovered) placement into the running
// cluster: every live site's server rebuilds its reference database against
// the plan's workload and adopts the new replica set, and the routing table
// updates so PageURL sends clients to each page's current host — all
// without restarting a single server. The cluster's construction workload
// is untouched; routing state lives entirely in the table, so reapplying
// the original (env.W, placement) pair is a full recovery.
func (c *Cluster) ApplyPlan(w2 *workload.Workload, p *model.Placement) error {
	if w2.NumPages() != c.W.NumPages() || w2.NumSites() != c.W.NumSites() {
		return fmt.Errorf("webserve: plan shaped for a different workload (%d/%d pages, %d/%d sites)",
			w2.NumPages(), c.W.NumPages(), w2.NumSites(), c.W.NumSites())
	}
	for _, ls := range c.Sites {
		if err := ls.Rehome(w2, p); err != nil {
			return err
		}
	}
	routes := make([]workload.SiteID, w2.NumPages())
	for j := range w2.Pages {
		routes[j] = w2.Pages[j].Site
	}
	c.mu.Lock()
	c.routes = routes
	c.curW = w2
	c.curP = p
	c.mu.Unlock()
	return nil
}

// CurrentPlan returns the workload and placement the cluster serves right
// now: the construction pair before any ApplyPlan, the last applied pair
// after. The scrubber walks exactly this placement — verifying what the
// plan *currently* claims each site stores.
func (c *Cluster) CurrentPlan() (*workload.Workload, *model.Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curW, c.curP
}

// ClearRot marks site i's replica of object k repaired in the fault plan's
// injector — the live-cluster model of an anti-entropy re-write: once the
// scrubber re-ships the replica, subsequent serves are clean. A no-op
// without fault injection or for out-of-range sites.
func (c *Cluster) ClearRot(i int, k workload.ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.siteInjs) {
		c.siteInjs[i].ClearRot(int(k))
	}
}

// RotRemaining sums the still-rotted replica count across all sites.
func (c *Cluster) RotRemaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, inj := range c.siteInjs {
		n += inj.RotCount()
	}
	return n
}

// Route returns the site currently serving page j: the routing table's
// entry after an ApplyPlan, the workload's static assignment before.
func (c *Cluster) Route(j workload.PageID) workload.SiteID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.routes != nil {
		return c.routes[j]
	}
	return c.W.Pages[j].Site
}

// PageURL returns the URL of page j on its current serving site (routing
// table aware — after a repair this points at the page's new home).
func (c *Cluster) PageURL(j workload.PageID) string {
	c.mu.Lock()
	site := c.W.Pages[j].Site
	if c.routes != nil {
		site = c.routes[j]
	}
	base := c.SiteBases[site]
	c.mu.Unlock()
	return base + htmlrefs.PagePath(j)
}

// Client builds a resilient client wired to this cluster: repository
// fallback enabled, resilience counters registered in the cluster's
// registry when it has one, and — when tracing is armed — a client tracer
// sharing the cluster's span buffer, ID stream and epoch, so client and
// serve spans assemble into one tree.
func (c *Cluster) Client(opts ClientOptions) *Client {
	if opts.FallbackBase == "" {
		opts.FallbackBase = c.RepoBase
	}
	if opts.Metrics == nil {
		opts.Metrics = c.Metrics
	}
	if opts.Trace == nil {
		opts.Trace = c.Tracer.WithKind(trace.KindClient)
	}
	cl := NewClientOptions(c.W, opts)
	// Every payload is self-verifying, so cluster clients check end to end
	// by default: a corrupted body counts as a retryable failure
	// (retry.corrupt), never as success.
	cl.Verify = true
	return cl
}
