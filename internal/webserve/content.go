// Package webserve implements the paper's Section-2 system over net/http:
// a repository server and local site servers that serve real HTML and
// multimedia bytes, with the local servers rewriting MO URLs on the fly
// from their reference databases, plus a client that downloads a page the
// way the paper's browser does — the local chain and the repository chain
// in parallel over persistent connections. It exists to demonstrate (and
// integration-test) that the planner's placements drive a working serving
// system, not only the simulator.
package webserve

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// Self-verifying payloads: every multimedia object the cluster serves is a
// pure function of (workload seed, object ID, serving source), with a
// fixed-width header embedding those coordinates plus a CRC of the body.
// Any fetched body can therefore be verified against the plan with no
// side-channel state — the client, the scrubber and the tests all share one
// end-to-end replication-correctness oracle (ROADMAP item 2's oval-style
// payloads).
const (
	// contentBlockSize is the repeating unit of an object's synthetic body.
	contentBlockSize = 4096
	// PayloadHeaderLen is the exact byte length of the payload header line.
	// The fixed fields take 55 bytes; 96 leaves 40 digits of headroom for
	// the obj/src/len decimals before the newline terminator.
	PayloadHeaderLen = 96
	// RepoSource is the PayloadHeader.Source value of repository-served
	// payloads; replica copies carry their site index instead.
	RepoSource = -1
)

// payloadContentStream labels the rng child stream the body keystream is
// derived from, disjoint from every other stream family in the repo.
const payloadContentStream uint64 = 421

// PayloadHeader is the decoded form of a payload's leading PayloadHeaderLen bytes.
type PayloadHeader struct {
	// Object is the multimedia object the payload claims to be.
	Object workload.ObjectID
	// Source identifies who generated the copy: a site index, or
	// RepoSource for the repository's authoritative copy.
	Source int
	// Seed is the workload seed the content was derived from.
	Seed uint64
	// Length is the total payload length, header included.
	Length int64
	// Sum is the CRC-32 (IEEE) of the body (everything after the header).
	Sum uint32
}

// EncodePayloadHeader renders the header as its fixed-width PayloadHeaderLen-byte line.
func EncodePayloadHeader(h PayloadHeader) []byte {
	line := fmt.Sprintf("REPL1 obj=%d src=%d seed=%016x len=%d sum=%08x",
		h.Object, h.Source, h.Seed, h.Length, h.Sum)
	buf := make([]byte, PayloadHeaderLen)
	for i := range buf {
		buf[i] = ' '
	}
	copy(buf, line)
	buf[PayloadHeaderLen-1] = '\n'
	return buf
}

// DecodePayloadHeader parses a payload's leading header line. It never
// panics on arbitrary input; malformed headers return an *IntegrityError.
func DecodePayloadHeader(data []byte) (PayloadHeader, error) {
	var h PayloadHeader
	if len(data) < PayloadHeaderLen {
		return h, &IntegrityError{Reason: fmt.Sprintf("payload too short for header (%d bytes)", len(data))}
	}
	if data[PayloadHeaderLen-1] != '\n' {
		return h, &IntegrityError{Reason: "payload header not newline-terminated"}
	}
	line := bytes.TrimRight(data[:PayloadHeaderLen-1], " ")
	var obj int
	n, err := fmt.Sscanf(string(line), "REPL1 obj=%d src=%d seed=%x len=%d sum=%x",
		&obj, &h.Source, &h.Seed, &h.Length, &h.Sum)
	if err != nil || n != 5 {
		return h, &IntegrityError{Reason: fmt.Sprintf("malformed payload header %q", line)}
	}
	if obj < 0 || h.Length < PayloadHeaderLen {
		return h, &IntegrityError{Reason: fmt.Sprintf("payload header out of range (obj=%d len=%d)", obj, h.Length)}
	}
	// The fixed width must round-trip: a header whose re-encoding differs
	// (sign tricks, leading zeros, trailing garbage) is not canonical.
	h.Object = workload.ObjectID(obj)
	if !bytes.Equal(EncodePayloadHeader(h), data[:PayloadHeaderLen]) {
		return h, &IntegrityError{Object: h.Object, Reason: "non-canonical payload header"}
	}
	return h, nil
}

// IntegrityError reports a payload that fails end-to-end verification —
// wrong object, wrong seed, truncated, or bit-flipped. The client's
// failureReason classifies it as "corrupt", making verification failures
// retryable (and fallback-able) like any transient fault.
type IntegrityError struct {
	Object workload.ObjectID
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("webserve: object %d integrity: %s", e.Object, e.Reason)
}

// payloadBlock builds the deterministic body block for (seed, k, src): a
// SplitMix-derived keystream, so two sources' copies of the same object are
// distinguishable bytes with identical sizes.
func payloadBlock(seed uint64, k workload.ObjectID, src int) []byte {
	s := rng.New(seed).Split(payloadContentStream, uint64(k), uint64(src+1))
	b := make([]byte, contentBlockSize)
	for i := 0; i < len(b); i += 8 {
		x := s.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(x >> (8 * j))
		}
	}
	return b
}

// bodyCRC computes the CRC-32 of block repeated out to n bytes.
func bodyCRC(block []byte, n int64) uint32 {
	h := crc32.NewIEEE()
	for n > 0 {
		chunk := block
		if int64(len(chunk)) > n {
			chunk = chunk[:n]
		}
		_, _ = h.Write(chunk)
		n -= int64(len(chunk))
	}
	return h.Sum32()
}

// payloadFor assembles object k's header and body block as served by src.
func payloadFor(w *workload.Workload, src int, k workload.ObjectID) (header, block []byte, bodyLen int64) {
	total := int64(w.ObjectSize(k))
	bodyLen = total - PayloadHeaderLen
	if bodyLen < 0 {
		bodyLen = 0
	}
	block = payloadBlock(w.Seed, k, src)
	header = EncodePayloadHeader(PayloadHeader{
		Object: k,
		Source: src,
		Seed:   w.Seed,
		Length: total,
		Sum:    bodyCRC(block, bodyLen),
	})
	if total < PayloadHeaderLen {
		header = header[:total]
	}
	return header, block, bodyLen
}

// ObjectReader streams the self-verifying content of object k as served by
// src (a site index, or RepoSource for the repository) at its workload
// size: the fixed-width header, then the (seed, object, source)-keyed body.
// The reader is cheap: one block repeated, truncated at the end.
func ObjectReader(w *workload.Workload, src int, k workload.ObjectID) io.Reader {
	header, block, bodyLen := payloadFor(w, src, k)
	return io.MultiReader(bytes.NewReader(header), &blockReader{block: block, remaining: bodyLen})
}

type blockReader struct {
	block     []byte
	remaining int64
	offset    int
}

func (r *blockReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.remaining > 0 {
		chunk := r.block[r.offset:]
		want := len(p) - n
		if want > len(chunk) {
			want = len(chunk)
		}
		if int64(want) > r.remaining {
			want = int(r.remaining)
		}
		copy(p[n:], chunk[:want])
		n += want
		r.remaining -= int64(want)
		r.offset = (r.offset + want) % len(r.block)
	}
	return n, nil
}

// VerifyObject checks that data is a genuine copy of object k from *some*
// valid source: size, header coordinates, checksum and every body byte. All
// failures are *IntegrityError.
func VerifyObject(w *workload.Workload, k workload.ObjectID, data []byte) error {
	_, err := verifyPayload(w, k, data)
	return err
}

// VerifyObjectFrom is VerifyObject plus a provenance check: the payload
// must declare exactly the expected source, so a replica scrub proves the
// bytes at site src really are site src's copy — not a proxied or stale
// payload that merely checksums.
func VerifyObjectFrom(w *workload.Workload, src int, k workload.ObjectID, data []byte) error {
	h, err := verifyPayload(w, k, data)
	if err != nil {
		return err
	}
	if h.Source != src {
		return &IntegrityError{Object: k, Reason: fmt.Sprintf("payload claims source %d, want %d", h.Source, src)}
	}
	return nil
}

// verifyPayload is the shared verification core.
func verifyPayload(w *workload.Workload, k workload.ObjectID, data []byte) (PayloadHeader, error) {
	var h PayloadHeader
	if got, want := units.ByteSize(len(data)), w.ObjectSize(k); got != want {
		return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("%d bytes, want %d", got, want)}
	}
	h, err := DecodePayloadHeader(data)
	if err != nil {
		return h, err
	}
	switch {
	case h.Object != k:
		return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("payload claims object %d", h.Object)}
	case h.Seed != w.Seed:
		return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("payload seed %x, want %x", h.Seed, w.Seed)}
	case h.Length != int64(len(data)):
		return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("payload declares %d bytes, body has %d", h.Length, len(data))}
	case h.Source != RepoSource && (h.Source < 0 || h.Source >= w.NumSites()):
		return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("payload claims unknown source %d", h.Source)}
	}
	body := data[PayloadHeaderLen:]
	if bodyCRC(body, int64(len(body))) != h.Sum {
		return h, &IntegrityError{Object: k, Reason: "body checksum mismatch"}
	}
	// The checksum catches bit-flips; the byte compare additionally catches
	// a forged (sum, body) pair that is not the keystream.
	block := payloadBlock(w.Seed, k, h.Source)
	for i := 0; i < len(body); i += len(block) {
		end := i + len(block)
		if end > len(body) {
			end = len(body)
		}
		for off := i; off < end; off++ {
			if body[off] != block[off-i] {
				return h, &IntegrityError{Object: k, Reason: fmt.Sprintf("body corrupt at byte %d", off+PayloadHeaderLen)}
			}
		}
	}
	return h, nil
}
