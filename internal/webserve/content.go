// Package webserve implements the paper's Section-2 system over net/http:
// a repository server and local site servers that serve real HTML and
// multimedia bytes, with the local servers rewriting MO URLs on the fly
// from their reference databases, plus a client that downloads a page the
// way the paper's browser does — the local chain and the repository chain
// in parallel over persistent connections. It exists to demonstrate (and
// integration-test) that the planner's placements drive a working serving
// system, not only the simulator.
package webserve

import (
	"fmt"
	"io"

	"repro/internal/units"
	"repro/internal/workload"
)

// contentBlock is the repeating unit of an object's synthetic payload.
const contentBlockSize = 4096

// objectBlock builds the deterministic 4 KiB block for object k: a header
// naming the object followed by a k-seeded byte pattern, so clients can
// verify they received the object they asked for without the server storing
// anything.
func objectBlock(k workload.ObjectID) []byte {
	b := make([]byte, contentBlockSize)
	header := fmt.Sprintf("MO:%d\n", k)
	copy(b, header)
	x := uint32(k)*2654435761 + 12345
	for i := len(header); i < len(b); i++ {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

// ObjectReader streams the synthetic content of object k at its workload
// size. The reader is cheap: one shared block repeated, truncated at the
// end.
func ObjectReader(w *workload.Workload, k workload.ObjectID) io.Reader {
	return &blockReader{block: objectBlock(k), remaining: int64(w.ObjectSize(k))}
}

type blockReader struct {
	block     []byte
	remaining int64
	offset    int
}

func (r *blockReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.remaining > 0 {
		chunk := r.block[r.offset:]
		want := len(p) - n
		if want > len(chunk) {
			want = len(chunk)
		}
		if int64(want) > r.remaining {
			want = int(r.remaining)
		}
		copy(p[n:], chunk[:want])
		n += want
		r.remaining -= int64(want)
		r.offset = (r.offset + want) % len(r.block)
	}
	return n, nil
}

// VerifyObject checks that data is exactly object k's synthetic content.
func VerifyObject(w *workload.Workload, k workload.ObjectID, data []byte) error {
	if got, want := units.ByteSize(len(data)), w.ObjectSize(k); got != want {
		return fmt.Errorf("webserve: object %d has %d bytes, want %d", k, got, want)
	}
	block := objectBlock(k)
	for i := 0; i < len(data); i += len(block) {
		end := i + len(block)
		if end > len(data) {
			end = len(data)
		}
		for off := i; off < end; off++ {
			if data[off] != block[off-i] {
				return fmt.Errorf("webserve: object %d corrupt at byte %d", k, off)
			}
		}
	}
	return nil
}
