package repro

// Characterization ("golden") tests: they pin exact numeric outputs for a
// fixed seed so that *unintentional* behavior changes — a reordered loop, a
// different tie-break, an accidental extra RNG draw — are caught
// immediately. An intentional algorithm change may update the constants,
// with the diff making the behavioral shift explicit in review. Everything
// here is deterministic by construction (seeded math/rand, no map-order
// dependence in any numeric path).

import (
	"math"
	"testing"
)

const goldenTol = 1e-9 // relative

func relClose(a, b float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b)/math.Abs(b) <= goldenTol
}

func goldenEnv(t *testing.T) *Env {
	t.Helper()
	w := MustGenerateWorkload(SmallWorkloadConfig(), 424242)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(424242))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestGoldenWorkloadShape(t *testing.T) {
	env := goldenEnv(t)
	w := env.W
	if got := w.NumPages(); got != 197 {
		t.Errorf("pages = %d, want 197 (generator behavior changed)", got)
	}
	var bytes ByteSize
	for _, o := range w.Objects {
		bytes += o.Size
	}
	if got := int64(bytes); got != 505986835 {
		t.Errorf("total object bytes = %d, want 505986835 (size sampling changed)", got)
	}
}

func TestGoldenPlanObjective(t *testing.T) {
	env := goldenEnv(t)
	_, res, err := Plan(env, PlanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const wantD = 28743.268873523462
	if !relClose(res.D, wantD) {
		t.Errorf("plan D = %.12g, want %.12g (planner behavior changed)", res.D, wantD)
	}
}

func TestGoldenSimulation(t *testing.T) {
	env := goldenEnv(t)
	p, _, err := Plan(env, PlanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(env.W)
	cfg.RequestsPerSite = 200
	res, err := Simulate(env.W, env.Est, NewStaticPolicy("g", p), cfg, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	const wantMean = 1283.4768792205
	if !relClose(res.PageRT.Mean(), wantMean) {
		t.Errorf("simulated mean = %.12g, want %.12g (simulator behavior changed)", res.PageRT.Mean(), wantMean)
	}
}
