package repro

// Benchmark harness: one benchmark per paper artifact (Table 1, Figures
// 1-3, the §5.2 equivalence claim) plus kernel and ablation benches. The
// artifact benches run the experiment at a reduced-but-faithful scale per
// iteration so `go test -bench=.` finishes in minutes; the full Table-1
// volume is exercised by the *PaperScale benches and by cmd/replexp.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/workload"
)

// benchOpts is the per-iteration experiment scale for the figure benches.
func benchOpts() ExperimentOptions {
	o := experiments.Quick()
	o.Runs = 1
	o.RequestsPerSite = 100
	return o
}

// BenchmarkTable1WorkloadGen regenerates the paper's Table-1 workload
// (10 sites, 15,000 MOs, 400-800 pages/site) once per iteration.
func BenchmarkTable1WorkloadGen(b *testing.B) {
	cfg := DefaultWorkloadConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := GenerateWorkload(cfg, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if w.NumObjects() != 15000 {
			b.Fatal("wrong object count")
		}
	}
}

// BenchmarkFigure1 regenerates the Figure-1 storage sweep (Proposed vs LRU
// vs the Remote/Local references).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 4 {
			b.Fatal("wrong series count")
		}
	}
}

// BenchmarkFigure2 regenerates the Figure-2 processing-capacity sweep.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the Figure-3 constrained-repository sweep
// (off-loading active).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageEquivalence measures the §5.2 claim sweep.
func BenchmarkStorageEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := StorageEquivalence(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fraction*100, "equiv-storage-%")
	}
}

// paperScaleEnv builds one full Table-1 environment (shared across
// iterations — generation is benchmarked separately).
func paperScaleEnv(b *testing.B) *Env {
	b.Helper()
	w, err := GenerateWorkload(DefaultWorkloadConfig(), 2026)
	if err != nil {
		b.Fatal(err)
	}
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(2026))
	if err != nil {
		b.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkPlanPaperScale runs the full planning pipeline (PARTITION +
// restorations) on the Table-1 workload.
func BenchmarkPlanPaperScale(b *testing.B) {
	env := paperScaleEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Plan(env, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanConstrained plans under 30 % storage and 50 % capacity —
// both restoration loops active.
func BenchmarkPlanConstrained(b *testing.B) {
	env := paperScaleEnv(b)
	env.Budgets = env.Budgets.Scale(env.W, 0.3, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Plan(env, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatePaperScale simulates the paper's 10,000 requests per
// site over the Table-1 workload.
func BenchmarkSimulatePaperScale(b *testing.B) {
	env := paperScaleEnv(b)
	p, _, err := Plan(env, PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig(env.W)
	pol := NewStaticPolicy("Proposed", p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(env.W, env.Est, pol, cfg, NewStream(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.PageRT.N() == 0 {
			b.Fatal("empty simulation")
		}
	}
}

// BenchmarkSimulateQueueing measures the fluid-queue extension's overhead.
func BenchmarkSimulateQueueing(b *testing.B) {
	env := paperScaleEnv(b)
	p, _, err := Plan(env, PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig(env.W)
	cfg.Queueing = true
	pol := NewStaticPolicy("Proposed", p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(env.W, env.Est, pol, cfg, NewStream(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitionSort quantifies PARTITION's decreasing-size
// visit order: it reports the objective achieved with and without the sort
// (lower is better) alongside the running time of the sorted variant.
func BenchmarkAblationPartitionSort(b *testing.B) {
	env := paperScaleEnv(b)
	var dSorted, dUnsorted float64
	for i := 0; i < b.N; i++ {
		pl := core.NewPlanner(env)
		pl.PartitionAll()
		dSorted = pl.D()
	}
	plU := core.NewPlanner(env)
	for j := range env.W.Pages {
		plU.PartitionPageUnsorted(workload.PageID(j))
	}
	dUnsorted = plU.D()
	b.ReportMetric(dSorted, "D-sorted")
	b.ReportMetric(dUnsorted, "D-unsorted")
	if dSorted > dUnsorted*1.2 {
		b.Fatalf("sorted partition much worse than unsorted: %v vs %v", dSorted, dUnsorted)
	}
}

// BenchmarkAblationNaiveSplits compares the planner's objective with the
// naive SizeThreshold and HalfSplit policies under the cost model.
func BenchmarkAblationNaiveSplits(b *testing.B) {
	env := paperScaleEnv(b)
	var dPlan float64
	for i := 0; i < b.N; i++ {
		p, _, err := Plan(env, PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		dPlan = model.D(env, p)
	}
	dHalf := model.D(env, policies.HalfSplit(env.W).Placement())
	dThresh := model.D(env, policies.SizeThreshold(env.W, int64(500*KB)).Placement())
	b.ReportMetric(dPlan, "D-planned")
	b.ReportMetric(dHalf, "D-halfsplit")
	b.ReportMetric(dThresh, "D-sizethreshold")
	if dPlan > dHalf || dPlan > dThresh {
		b.Fatalf("planner (D=%v) lost to a naive split (half=%v, threshold=%v)", dPlan, dHalf, dThresh)
	}
}

// BenchmarkGreedyGap certifies PARTITION against the exact per-page
// optimum (bucket-quantized subset-sum DP) on the Table-1 workload,
// reporting the mean and max per-page optimality gap in percent.
func BenchmarkGreedyGap(b *testing.B) {
	env := paperScaleEnv(b)
	var mean, max float64
	for i := 0; i < b.N; i++ {
		pl := core.NewPlanner(env)
		pl.PartitionAll()
		mean, max = core.GreedyGap(pl)
	}
	b.ReportMetric(mean, "mean-gap-%")
	b.ReportMetric(max, "max-gap-%")
	if mean > 5 {
		b.Fatalf("mean optimality gap %.2f%% too large", mean)
	}
}

// BenchmarkRedirectStudy regenerates the Section-6 redirection comparison.
func BenchmarkRedirectStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RedirectStudy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrift regenerates the plan-staleness study.
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DriftFigure(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOffloadNegotiation measures the off-loading protocol alone, with
// the repository capped at 60 % of its pre-offload load.
func BenchmarkOffloadNegotiation(b *testing.B) {
	env := paperScaleEnv(b)
	// Probe for the pre-offload load.
	probe, _, err := Plan(env, PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pre := model.RepoLoad(env, probe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pl := core.NewPlanner(env)
		pl.PartitionAll()
		for s := range env.W.Sites {
			pl.RestoreStorageSite(workload.SiteID(s))
			pl.RestoreProcessingSite(workload.SiteID(s))
		}
		env.Budgets.RepoCapacity = ReqPerSec(float64(pre) * 0.6)
		b.StartTimer()
		st := pl.Offload(nil)
		if !st.Restored {
			b.Fatal("offload failed")
		}
		b.StopTimer()
		env.Budgets.RepoCapacity = InfiniteCapacity()
		b.StartTimer()
	}
}

// BenchmarkThresholdStudy regenerates the dynamic-replication comparison.
func BenchmarkThresholdStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ThresholdStudy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity regenerates the estimate-error robustness study.
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivity(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueingStudy regenerates the Eq. 8 queueing-overhead study.
func BenchmarkQueueingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := QueueingStudy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
