package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example reproduces the library's core flow: generate a workload, plan the
// replication with the paper's algorithm, and compare the simulated
// response time against the Remote baseline. Everything is seeded, so the
// output is deterministic.
func Example() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 42)
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}
	env, err := repro.NewEnv(w, est, repro.FullBudgets(w))
	if err != nil {
		log.Fatal(err)
	}
	placement, result, err := repro.Plan(env, repro.PlanOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v\n", result.Feasible)

	cfg := repro.DefaultSimConfig(w)
	cfg.RequestsPerSite = 300
	ours, err := repro.Simulate(w, est, repro.NewStaticPolicy("Proposed", placement), cfg, repro.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	remote, err := repro.Simulate(w, est, repro.NewRemotePolicy(w), cfg, repro.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed beats all-remote: %v\n", ours.CompositeMean() < remote.CompositeMean())
	// Output:
	// feasible: true
	// proposed beats all-remote: true
}

// ExamplePlan shows the planner under tight constraints: storage at 30 %
// and processing at 50 % of Table-1 levels, with the repository capped so
// the off-loading negotiation runs.
func ExamplePlan() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 42)
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}
	budgets := repro.FullBudgets(w).Scale(w, 0.3, 0.5)

	// Size C(R) relative to the load the sites' plans would impose
	// (DESIGN.md §3.7): probe with an unconstrained repository first.
	probeEnv, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		log.Fatal(err)
	}
	probe, _, err := repro.Plan(probeEnv, repro.PlanOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	pre := repro.Evaluate(probeEnv, probe).RepoLoad
	budgets.RepoCapacity = repro.ReqPerSec(float64(pre) * 0.7)

	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		log.Fatal(err)
	}
	_, result, err := repro.Plan(env, repro.PlanOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offload ran: %v, restored: %v\n", result.Offload.Ran, result.Offload.Restored)
	fmt.Printf("feasible: %v\n", result.Feasible)
	// Output:
	// offload ran: true, restored: true
	// feasible: true
}

// ExampleDiffPlacements computes the migration between two plans.
func ExampleDiffPlacements() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 42)
	diff, err := repro.DiffPlacements(repro.AllRemote(w), repro.AllRemote(w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-migration bytes: %d\n", diff.TotalAddedBytes())
	// Output:
	// self-migration bytes: 0
}
