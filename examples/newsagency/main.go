// News agency scenario — the paper's motivating use case. A news agency
// runs regional sites sharing a central multimedia repository of clips and
// images. Breaking news concentrates traffic on a few hot pages (10 % of
// pages get 60 % of requests). The question the example answers is the
// paper's §5.2 storage claim: how much regional cache do you actually need?
// The proposed partition-based replication reaches the response time of an
// ideal warm LRU cache at 100 % storage using only ~60-70 % of it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// Regional sites with hotter-than-default traffic: breaking news.
	cfg := repro.SmallWorkloadConfig()
	cfg.HotPageFrac = 0.05    // 5 % of pages are breaking stories...
	cfg.HotTrafficShare = 0.7 // ...drawing 70 % of the clicks.

	opts := repro.QuickExperiment()
	opts.Workload = cfg
	opts.Runs = 3
	opts.RequestsPerSite = 400

	fmt.Println("news agency: how much regional cache does each site need?")
	fmt.Println()

	res, err := repro.StorageEquivalence(opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("-> provisioning %.0f%% of the full mirror per region matches the\n", res.Fraction*100)
	fmt.Println("   response time of a full-size ideal LRU cache, because the planner")
	fmt.Println("   keeps only the objects whose local copies actually shorten the")
	fmt.Println("   slower of the two parallel download chains.")
}
