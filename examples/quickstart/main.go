// Quickstart: generate a workload, plan the replication with the paper's
// algorithm, simulate it against the Remote/Local baselines, and print the
// response-time comparison.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A small synthetic workload (same distributions as the paper's
	// Table 1, ~50× less volume so this runs in milliseconds).
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 42)
	fmt.Printf("workload: %d sites, %d pages, %d multimedia objects\n",
		w.NumSites(), w.NumPages(), w.NumObjects())

	// 2. Network estimates: what the planner believes about transfer rates
	// and connection overheads (Table-1 ranges).
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Plan under full storage and the configured 150 req/s capacities.
	env, err := repro.NewEnv(w, est, repro.FullBudgets(w))
	if err != nil {
		log.Fatal(err)
	}
	placement, result, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: objective D=%.1f, feasible=%v\n", result.D, result.Feasible)

	// 4. Simulate: every policy sees the identical request stream and the
	// identical per-request deviations from the estimates (§5.1 model).
	cfg := repro.DefaultSimConfig(w)
	cfg.RequestsPerSite = 1000
	for _, pol := range []repro.Policy{
		repro.NewStaticPolicy("Proposed", placement),
		repro.NewLocalPolicy(w),
		repro.NewRemotePolicy(w),
	} {
		res, err := repro.Simulate(w, est, pol, cfg, repro.NewStream(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s mean page RT %8.1fs   composite %8.1fs\n",
			res.Policy, res.PageRT.Mean(), res.CompositeMean())
	}
}
