// Live server walk-through: the Section-2 mechanics made visible. Starts
// the repository and the local sites as real HTTP servers, shows how the
// same stored HTML is rewritten on the fly under two different plans, and
// lets the client observe the parallel local/repository split change.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/htmlrefs"
	"repro/internal/webserve"
)

func main() {
	cfg := repro.SmallWorkloadConfig()
	cfg.Sites = 2
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 8, 12
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 150, 50, 80
	w := repro.MustGenerateWorkload(cfg, 7)

	// Start with everything on the repository.
	cluster, err := webserve.StartCluster(w, repro.AllRemote(w))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	pid := w.Sites[0].Pages[0]
	client := webserve.NewClient(w)

	fmt.Printf("page W%d lives at %s\n\n", pid, cluster.PageURL(pid))

	show := func(label string) {
		res, err := client.FetchPage(cluster.PageURL(pid), pid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s local chain: %2d objects (%6.1f KB)   repository chain: %2d objects (%6.1f KB)\n",
			label,
			res.LocalChain.Objects, float64(res.LocalChain.Bytes)/1024,
			res.RemoteChain.Objects, float64(res.RemoteChain.Bytes)/1024)
	}

	show("all-remote plan:")

	// Plan properly and apply it live — same stored HTML, new rewrite.
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	env, err := repro.NewEnv(w, est, repro.FullBudgets(w))
	if err != nil {
		log.Fatal(err)
	}
	placement, _, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range cluster.Sites {
		if err := s.ApplyPlacement(placement); err != nil {
			log.Fatal(err)
		}
	}
	show("after planning (balanced):")

	for _, s := range cluster.Sites {
		if err := s.ApplyPlacement(repro.AllLocal(w)); err != nil {
			log.Fatal(err)
		}
	}
	show("all-local plan:")

	// Peek at the rewriting itself: the first MO URL under each plan.
	fmt.Println("\nthe served HTML changes with the plan (first MO reference):")
	doc, err := client.GetDoc(cluster.PageURL(pid))
	if err != nil {
		log.Fatal(err)
	}
	refs := htmlrefs.ParseRefs(doc)
	if len(refs) > 0 {
		fmt.Printf("  now:  %s\n", string(doc[refs[0].Start:refs[0].End]))
	}
	fmt.Printf("  (all URLs point at %s — the local site — under the all-local plan)\n",
		strings.TrimPrefix(cluster.SiteBases[0], "http://"))
}
