// Off-loading walk-through: what happens when the repository cannot serve
// all the requests the sites' plans direct at it. The example constrains
// the repository to 60 % of its pre-offload load and prints the actual
// OFF_LOADING_REPOSITORY message exchange from Section 4.2 — the status
// collection, the L1/L2 classification, the proportional NewReq quotas,
// the sites' accept/decline answers and the L3 demotions.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 7)
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}

	// Probe: how much load would land on the repository if it were
	// unconstrained? Tighten the sites a little so a realistic share of
	// downloads is remote.
	budgets := repro.FullBudgets(w).Scale(w, 0.6, 0.6)
	probeEnv, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		log.Fatal(err)
	}
	probe, _, err := repro.Plan(probeEnv, repro.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pre := repro.Evaluate(probeEnv, probe).RepoLoad
	fmt.Printf("pre-offload repository load: %.2f req/s\n", float64(pre))

	// Now the repository can serve only 60 % of that.
	budgets.RepoCapacity = repro.ReqPerSec(float64(pre) * 0.6)
	fmt.Printf("constraining C(R) to %.2f req/s — off-loading will negotiate:\n\n", float64(budgets.RepoCapacity))

	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		log.Fatal(err)
	}
	placement, result, err := repro.Plan(env, repro.PlanOptions{
		Distributed: true, // one goroutine per site, real message exchange
		MessageLog:  os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	off := result.Offload
	fmt.Printf("negotiation: %d rounds, %d messages, %.2f req/s moved to the sites,\n",
		off.Rounds, off.Messages, float64(off.MovedLocal))
	fmt.Printf("%d new replicas created, %d swapped; constraint restored: %v\n",
		off.NewReplicas, off.Swaps, off.Restored)

	report := repro.Evaluate(env, placement)
	fmt.Printf("\nfinal repository load %.2f req/s ≤ capacity %.2f req/s: %v\n",
		float64(report.RepoLoad), float64(report.RepoCap), report.RepoOK())
}
