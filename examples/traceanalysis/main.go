// Trace analysis: regression-testing replication policies offline. A
// recorded trace pins the traffic *and* the per-request network conditions,
// so two policy versions can be compared byte-identically — the workflow a
// team would use in CI to catch placement regressions before deploying a
// planner change.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 11)
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(11))
	if err != nil {
		log.Fatal(err)
	}

	// Record one canonical trace and persist it (CI would keep this file).
	cfg := repro.DefaultSimConfig(w)
	cfg.RequestsPerSite = 800
	trace, err := repro.RecordTrace(w, est, cfg, repro.NewStream(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d sites × %d views\n\n", w.NumSites(), cfg.RequestsPerSite)

	// "Current" policy: the full planner at 50 % storage.
	budgets := repro.FullBudgets(w).Scale(w, 0.5, 1)
	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		log.Fatal(err)
	}
	current, _, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// "Candidate" policy: the planner with the size-sort ablated — the kind
	// of simplification someone might propose; the trace replay shows what
	// it costs before it ships.
	candidate, _, err := repro.Plan(env, repro.PlanOptions{UnsortedPartition: true})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(name string, p *repro.Placement) float64 {
		res, err := repro.ReplayTrace(w, trace, repro.NewStaticPolicy(name, p))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s composite %8.2fs   (page %8.2fs, local/repo req %d/%d)\n",
			name, res.CompositeMean(), res.PageRT.Mean(), res.LocalRequests, res.RepoRequests)
		return res.CompositeMean()
	}

	cur := measure("current planner", current)
	cand := measure("candidate (no sort)", candidate)

	fmt.Println()
	delta := (cand/cur - 1) * 100
	if delta > 0.5 {
		fmt.Printf("-> candidate regresses response time by %+.2f%% on the pinned trace; reject.\n", delta)
	} else {
		fmt.Printf("-> candidate within %+.2f%% of current on the pinned trace.\n", delta)
	}

	// The migration such a swap would cost, for completeness.
	diff, err := repro.DiffPlacements(current, candidate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   applying it would move %v into the sites and free %v.\n",
		diff.TotalAddedBytes(), diff.TotalRemovedBytes())
}
