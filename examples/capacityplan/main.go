// Capacity planning: given a response-time SLA expressed as "at most X %
// above the unconstrained optimum", find the smallest per-site storage
// budget that meets it. This is the Figure-1 sweep used as a sizing tool —
// the planner/simulator pair answers provisioning questions the paper's
// evaluation only plots.
package main

import (
	"fmt"
	"log"

	"repro"
)

const slaPct = 10.0 // tolerate at most +10 % over the unconstrained optimum

func main() {
	w := repro.MustGenerateWorkload(repro.SmallWorkloadConfig(), 99)
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(99))
	if err != nil {
		log.Fatal(err)
	}

	cfg := repro.DefaultSimConfig(w)
	cfg.RequestsPerSite = 800

	simulate := func(storageFrac float64) (float64, repro.ByteSize) {
		budgets := repro.FullBudgets(w).Scale(w, storageFrac, 1)
		env, err := repro.NewEnv(w, est, budgets)
		if err != nil {
			log.Fatal(err)
		}
		placement, _, err := repro.Plan(env, repro.PlanOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(w, est, repro.NewStaticPolicy("Proposed", placement), cfg, repro.NewStream(3))
		if err != nil {
			log.Fatal(err)
		}
		var maxStore repro.ByteSize
		for i := 0; i < w.NumSites(); i++ {
			if used := placement.StorageUsed(repro.SiteID(i)); used > maxStore {
				maxStore = used
			}
		}
		return res.CompositeMean(), maxStore
	}

	base, _ := simulate(1.0)
	fmt.Printf("unconstrained composite response time: %.1fs\n", base)
	fmt.Printf("SLA: at most +%.0f%% -> %.1fs\n\n", slaPct, base*(1+slaPct/100))

	fmt.Printf("%-10s %-14s %-12s %s\n", "storage", "response", "vs optimum", "max site bytes")
	chosen := 1.0
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		rt, bytes := simulate(frac)
		rel := (rt/base - 1) * 100
		marker := ""
		if rel <= slaPct && chosen == 1.0 && frac < 1.0 { //repllint:allow float-compare — 1.0 is the exact "no fraction chosen yet" sentinel
			chosen = frac
			marker = "  <- smallest meeting SLA"
		}
		fmt.Printf("%8.0f%%  %10.1fs  %+9.1f%%  %v%s\n", frac*100, rt, rel, bytes, marker)
	}
	fmt.Printf("\nprovision %.0f%% of the full mirror per site.\n", chosen*100)
}
