package main

import (
	"strings"
	"testing"
)

func TestRunServeFetchAdapt(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "6", "-adapt"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"planned: D=", "repository: http://", "site S0:",
		"fetched 6 pages", "adaptive cycle", "re-planned on observed traffic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunServeNoFetch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fetched") {
		t.Error("fetched despite -fetch 0")
	}
}

func TestRunServeRejectsBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}
