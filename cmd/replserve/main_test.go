package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/trace"
)

func TestRunServeFetchAdapt(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "6", "-adapt"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"planned: D=", "repository: http://", "site S0:",
		"fetched 6 pages", "adaptive cycle", "re-planned on observed traffic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunServeNoFetch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fetched") {
		t.Error("fetched despite -fetch 0")
	}
}

func TestRunServeRejectsBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunServeChaos(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "8", "-chaos", "0.6"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"chaos: level 0.60 fault plan armed",
		"fetched 8 pages",
		"resilience:",
		"all 8 fetches completed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunServeRejectsBadChaosLevel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-chaos", "1.5"}, &sb); err == nil {
		t.Error("chaos level 1.5 accepted")
	}
}

func TestRunServeTraceJournal(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	chromePath := filepath.Join(dir, "trace.json")
	var sb strings.Builder
	if err := run([]string{"-fetch", "6", "-chaos", "0.4",
		"-trace", tracePath, "-chrome", chromePath, "-journal"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"journal: flight recorder armed",
		"spans written to",
		"Chrome trace written to",
		"journal:", "fault.injected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The forest round-trips and contains both client and server spans —
	// the X-Repl-Trace header really propagated across processes' handlers.
	spans, err := repro.LoadSpans(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var pages, serves int
	for i := range spans {
		switch spans[i].Name {
		case trace.SpanPage:
			pages++
		case trace.SpanServe:
			serves++
		}
	}
	if pages != 6 || serves == 0 {
		t.Fatalf("trace file has %d page roots, %d serve spans", pages, serves)
	}
}

func TestRunServeChromeRequiresTrace(t *testing.T) {
	if err := run([]string{"-chrome", "x.json"}, &strings.Builder{}); err == nil {
		t.Error("-chrome without -trace accepted")
	}
}

func TestRunServeHeal(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fetch", "4", "-heal", "-chaos", "0.3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"self-healing: supervisor probing",
		"fetched 4 pages",
		"repairs, ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
