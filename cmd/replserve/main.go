// Command replserve runs the paper's Section-2 system for real: it starts
// the repository and one HTTP server per local site on loopback ports,
// plans the replication, and serves pages whose multimedia URLs are
// rewritten on the fly per the plan. With -fetch it also drives a client
// over the pages (parallel local/repository chains, like the paper's
// browser model) and reports the observed split and timings; with -adapt it
// closes the Section-4.1 loop — a streaming estimator taps the live access
// path, a drift detector compares the estimate against the frequencies the
// plan was built from, and when the drift is actionable the planner re-runs
// and ships only the placement delta (one cycle after -fetch; a continuous
// loop with -serve).
//
// With -chaos LEVEL a deterministic fault plan (seeded from -seed) injects
// errors, resets, truncations, latency and outage windows into the site
// servers; the resilient client retries and falls back to the repository, so
// every fetch still completes.
//
// With -heal a self-healing supervisor probes every site's /healthz and,
// when a site stops answering (say, under -chaos outage windows), computes a
// repair plan — the dead site's pages re-homed onto survivors, replicas
// re-replicated — and applies it to the live cluster without a restart,
// reinstating the original placement once the site returns.
//
// With -scrub an anti-entropy scrubber walks every replica the live plan
// stores, verifies its self-describing payload end to end (catching replica
// rot and wire corruption that availability probes cannot see), and repairs
// corrupt replicas by re-shipping only their bytes from the repository.
//
// With -overload every server gets the admission stack — a bounded
// deadline-aware queue (CoDel sojourn shedding), AIMD concurrency limits and
// brownout page degradation — and an open-loop arrival ramp (1s base rate,
// 1s 10x flash crowd, 2s base) is driven through the live cluster; the
// summary shows goodput, 429 sheds and brownout-degraded pages.
//
// Usage:
//
// With -trace every fetch is traced end to end — the client's page root,
// chains, retries, backoffs and fallbacks, plus the server-side serve spans
// stitched in via the X-Repl-Trace header — and the forest is written as
// JSONL for cmd/repltrace (-chrome additionally writes Perfetto-loadable
// trace-event JSON). With -journal the control plane records its flight
// recorder (probe transitions, repair plans, placement pushes, injected
// faults), serves it at /debug/journal, and prints the event tally on exit.
//
// Usage:
//
//	replserve [-seed N] [-storage F] [-fetch N] [-adapt] [-metrics] [-serve]
//	          [-chaos LEVEL] [-heal] [-scrub] [-overload] [-trace FILE]
//	          [-chrome FILE] [-journal]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/admission"
	"repro/internal/controller"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/webserve"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replserve", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2026, "workload/estimate seed")
	storage := fs.Float64("storage", 0.5, "storage budget fraction")
	fetch := fs.Int("fetch", 20, "pages to fetch with the built-in client (0 = none)")
	adapt := fs.Bool("adapt", false, "run the online re-planning loop: estimate frequencies from live traffic, drift-gate a re-plan, ship only the delta (continuous with -serve)")
	metrics := fs.Bool("metrics", false, "serve a /metrics JSON snapshot and /debug/pprof/ on every server")
	serve := fs.Bool("serve", false, "keep serving until interrupted instead of exiting")
	chaos := fs.Float64("chaos", 0, "fault-injection level in [0,1]; 0 = healthy cluster")
	heal := fs.Bool("heal", false, "run the self-healing supervisor: probe /healthz, repair around dead sites, recover when they return")
	scrub := fs.Bool("scrub", false, "run the integrity scrubber: walk every stored replica, verify its self-describing payload end to end, and repair corrupt replicas with a delta-only re-ship (one cycle after -fetch; a continuous loop with -serve)")
	overload := fs.Bool("overload", false, "arm the admission stack (bounded deadline-aware queues, AIMD limits, brownout) and drive an open-loop 10x arrival ramp through the live cluster, reporting goodput, sheds and degradation")
	tracePath := fs.String("trace", "", "trace every fetch end to end and write the span forest to this JSONL file")
	chromePath := fs.String("chrome", "", "with -trace, also write the forest as Chrome trace-event JSON to this file")
	journalOn := fs.Bool("journal", false, "arm the control-plane flight recorder (served at /debug/journal, tallied on exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chromePath != "" && *tracePath == "" {
		return fmt.Errorf("-chrome requires -trace")
	}

	// A small workload: this command demonstrates the mechanics, not the
	// Table-1 volumes.
	cfg := repro.SmallWorkloadConfig()
	w, err := repro.GenerateWorkload(cfg, *seed)
	if err != nil {
		return err
	}
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(*seed))
	if err != nil {
		return err
	}
	budgets := repro.FullBudgets(w).Scale(w, *storage, 1)
	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		return err
	}
	placement, result, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "planned: D=%.1f feasible=%v\n", result.D, result.Feasible)

	var plan *faults.Plan
	if *chaos > 0 {
		fcfg := faults.DefaultPlanConfig()
		fcfg.Level = *chaos
		plan, err = faults.Generate(fcfg, w.NumSites(), *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chaos: level %.2f fault plan armed (seed %d, repository clean)\n", *chaos, *seed)
	}

	var spanBuf *repro.SpanBuffer
	if *tracePath != "" {
		spanBuf = repro.NewSpanBuffer(0)
	}
	var journal *repro.EventJournal
	if *journalOn {
		journal = repro.NewEventJournal(0)
	}
	copts := webserve.ClusterOptions{
		Metrics:   *metrics,
		Pprof:     *metrics,
		Faults:    plan,
		Trace:     spanBuf,
		TraceSeed: *seed,
		Journal:   journal,
	}
	if *overload {
		copts.Admission = &admission.Config{Seed: *seed}
		fmt.Fprintln(stdout, "admission: bounded deadline-aware queues armed on every server (CoDel sojourn law, AIMD limits, brownout)")
	}
	var freqEst *estimate.Estimator
	if *adapt {
		// A long half-life: one-shot demos observe seconds of traffic and
		// must not decay it away before the drift check.
		freqEst, err = estimate.New(w, estimate.Config{HalfLife: 3600})
		if err != nil {
			return err
		}
		copts.AccessTap = freqEst
	}
	cluster, err := webserve.StartClusterOptions(w, placement, copts)
	if err != nil {
		return err
	}
	clusterStart := time.Now()
	defer cluster.Close()
	if spanBuf != nil {
		defer func() {
			spans := spanBuf.Spans()
			if err := repro.SaveSpans(*tracePath, spans); err != nil {
				fmt.Fprintf(stdout, "trace: %v\n", err)
				return
			}
			fmt.Fprintf(stdout, "trace: %d spans written to %s (repltrace -i %s -seed %d -storage %.2f)\n",
				len(spans), *tracePath, *tracePath, *seed, *storage)
			if *chromePath != "" {
				if err := repro.SaveChromeTrace(*chromePath, spans); err != nil {
					fmt.Fprintf(stdout, "trace: %v\n", err)
					return
				}
				fmt.Fprintf(stdout, "trace: Chrome trace written to %s\n", *chromePath)
			}
		}()
	}
	if journal != nil {
		fmt.Fprintf(stdout, "journal: flight recorder armed (GET %s/debug/journal)\n", cluster.RepoBase)
		defer func() {
			fmt.Fprintf(stdout, "journal: %d events recorded\n", len(journal.Events()))
			for _, tc := range repro.CountJournalEvents(journal.Events()) {
				fmt.Fprintf(stdout, "  %-18s %6d\n", tc.Type, tc.Count)
			}
		}()
	}

	fmt.Fprintf(stdout, "repository: %s\n", cluster.RepoBase)
	for i, base := range cluster.SiteBases {
		fmt.Fprintf(stdout, "site S%d:    %s  (%d pages)\n", i, base, len(w.Sites[i].Pages))
	}
	if *metrics {
		fmt.Fprintf(stdout, "metrics:    %s/metrics (and /debug/pprof/, on every server)\n", cluster.RepoBase)
	}
	fmt.Fprintf(stdout, "example page: %s\n\n", cluster.PageURL(w.Sites[0].Pages[0]))

	if *heal {
		sup := controller.New(env, placement, cluster, controller.Options{
			Metrics: cluster.Metrics,
			Log:     stdout,
			Journal: journal,
		})
		sup.Start()
		defer func() {
			sup.Stop()
			repairs, recoveries := sup.Counts()
			fmt.Fprintf(stdout, "supervisor: %d repairs, %d recoveries applied\n", repairs, recoveries)
			if err := sup.Err(); err != nil {
				fmt.Fprintf(stdout, "supervisor: last error: %v\n", err)
			}
		}()
		fmt.Fprintln(stdout, "self-healing: supervisor probing every site's /healthz (down after 3 missed probes, repair applied live)")
	}

	var scrubber *controller.Scrubber
	if *scrub {
		scrubber = controller.NewScrubber(env, cluster, controller.ScrubOptions{
			Metrics: cluster.Metrics,
			Log:     stdout,
			Journal: journal,
		})
		fmt.Fprintln(stdout, "scrub: anti-entropy integrity scrubber armed (self-verifying payloads, delta-only repair)")
	}

	var adapter *controller.Adapter
	if *adapt {
		adapter, err = controller.NewAdapter(env, placement, cluster, freqEst, controller.AdaptOptions{
			Interval: 5 * time.Second,
			Metrics:  cluster.Metrics,
			Log:      stdout,
			Journal:  journal,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "adaptive: streaming estimator tapping the access path; drift-gated re-planning armed")
	}

	if *fetch > 0 {
		client := cluster.Client(webserve.ClientOptions{JitterSeed: *seed})
		client.Verify = true
		var localObjs, repoObjs, n int
		var retries, fallbacks, degraded int
		var elapsed time.Duration
		for i := 0; i < *fetch; i++ {
			site := i % w.NumSites()
			pid := w.Sites[site].Pages[i%len(w.Sites[site].Pages)]
			res, err := client.FetchPage(cluster.PageURL(pid), pid)
			if err != nil {
				return err
			}
			localObjs += res.LocalChain.Objects
			repoObjs += res.RemoteChain.Objects
			retries += res.Retries
			fallbacks += res.Fallbacks
			if res.Degraded() {
				degraded++
			}
			elapsed += res.Elapsed
			n++
		}
		fmt.Fprintf(stdout, "fetched %d pages: %d objects local, %d from the repository, avg %.1fms/page (loopback)\n",
			n, localObjs, repoObjs, float64(elapsed.Milliseconds())/float64(n))
		if *chaos > 0 {
			fmt.Fprintf(stdout, "resilience: %d retries, %d repository fallbacks, %d degraded pages — all %d fetches completed\n",
				retries, fallbacks, degraded, n)
		}
		if *metrics {
			fmt.Fprintln(stdout, "\ntelemetry snapshot:")
			if err := cluster.Metrics.Snapshot().WriteText(stdout); err != nil {
				return err
			}
		}
	}

	if *overload {
		fmt.Fprintln(stdout, "\noverload ramp: open-loop arrivals, 1s base + 1s 10x flash crowd + 2s base …")
		if err := overloadRamp(stdout, cluster, w, *seed); err != nil {
			return err
		}
	}

	if scrubber != nil && *fetch > 0 {
		fmt.Fprintln(stdout, "\nscrub cycle: walking every stored replica …")
		cyc, err := scrubber.RunCycle()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scrub: %d replicas checked, %d clean, %d corrupt, %d fetch errors\n",
			cyc.Checked, cyc.Clean, len(cyc.Corrupt), cyc.Errors)
		if cyc.Repaired {
			fmt.Fprintf(stdout, "scrub: repaired %d replicas with a %v delta-only re-ship\n",
				len(cyc.Corrupt), cyc.RepairBytes)
		}
	}

	if adapter != nil && *fetch > 0 {
		fmt.Fprintln(stdout, "\nadaptive cycle: drift check on the streamed estimate …")
		cyc, err := adapter.CheckNow(time.Since(clusterStart).Seconds())
		if err != nil {
			return err
		}
		switch {
		case cyc.Replanned:
			fmt.Fprintf(stdout, "re-planned on observed traffic (D %.1f -> %.1f) and shipped the delta live (%v in %d copy sets)\n",
				cyc.Delta.DBefore, cyc.Delta.DAfter, cyc.Delta.CopyBytes, len(cyc.Delta.Copies))
		case cyc.Noop:
			fmt.Fprintln(stdout, "drift triggered but re-planning left the placement unchanged — nothing shipped")
		default:
			fmt.Fprintf(stdout, "no actionable drift (L1=%.3f) — plan stands\n", cyc.Decision.L1)
		}
	}

	if *serve {
		if scrubber != nil {
			scrubber.Start()
			defer func() {
				scrubber.Stop()
				cycles, objects, corrupt, repairs := scrubber.Counts()
				fmt.Fprintf(stdout, "scrub: %d cycles, %d replicas checked, %d corrupt, %d repairs, %v re-shipped\n",
					cycles, objects, corrupt, repairs, scrubber.RepairBytes())
			}()
			fmt.Fprintln(stdout, "scrub: continuous integrity cycles every 2s")
		}
		if adapter != nil {
			adapter.Start()
			defer func() {
				adapter.Stop()
				checks, triggers, replans, noops := adapter.Counts()
				fmt.Fprintf(stdout, "adaptive: %d checks, %d triggers, %d re-plans, %d no-ops, %v shipped\n",
					checks, triggers, replans, noops, adapter.CopyBytes())
			}()
			fmt.Fprintln(stdout, "adaptive: continuous drift checks every 5s")
		}
		// Block until SIGINT/SIGTERM so the deferred cluster.Close() (and
		// any other cleanup) actually runs on shutdown.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintln(stdout, "\nserving — interrupt to stop")
		<-ctx.Done()
		stop()
		fmt.Fprintln(stdout, "shutting down")
		if *metrics {
			fmt.Fprintln(stdout, "final telemetry snapshot:")
			if err := cluster.Metrics.Snapshot().WriteText(stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// overloadRamp drives an open-loop arrival process at the live cluster: a
// base rate for 1s, a 10x flash crowd for 1s, then the base rate again for
// 2s (the arrival shape is a faults.LoadSpike, the same primitive the
// simulated study uses). Every request carries a propagated deadline in
// X-Repl-Deadline; the armed admission layer sheds with 429 + Retry-After
// when queues saturate and serves brownout-degraded pages under sustained
// pressure. Open-loop matters: arrivals do not slow down when the cluster
// does, which is exactly the regime where an unprotected server goes
// metastable.
func overloadRamp(stdout io.Writer, cluster *webserve.Cluster, w *repro.Workload, seed uint64) error {
	const (
		baseRate = 150.0 // req/s, comfortably loopback-feasible
		duration = 4 * time.Second
		deadline = 250 * time.Millisecond
	)
	plan := &faults.Plan{LoadSpikes: []faults.LoadSpike{{
		Window: faults.Window{Start: 1 * time.Second, End: 2 * time.Second},
		Factor: 10,
	}}}

	var urls []string
	for i := 0; i < w.NumSites(); i++ {
		for _, pid := range w.Sites[i].Pages {
			urls = append(urls, cluster.PageURL(pid))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("overload: no pages to request")
	}

	var ok, shed, brown, errs atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{}
	arrivals := repro.NewStream(seed)
	start := time.Now()
	for i := 0; ; i++ {
		elapsed := time.Since(start)
		if elapsed >= duration {
			break
		}
		rate := plan.RateAt(baseRate, elapsed)
		gap := time.Duration(-math.Log(1-arrivals.Float64()) / rate * float64(time.Second))
		time.Sleep(gap)
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				errs.Add(1)
				return
			}
			req.Header.Set(admission.DeadlineHeader, admission.FormatDeadline(time.Now().Add(deadline)))
			resp, err := client.Do(req)
			if err != nil {
				errs.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
			case resp.StatusCode == http.StatusOK:
				ok.Add(1)
				if t := resp.Header.Get(admission.BrownoutHeader); t != "" && t != "0" {
					brown.Add(1)
				}
			default:
				errs.Add(1)
			}
		}(urls[i%len(urls)])
	}
	wg.Wait()
	total := ok.Load() + shed.Load() + errs.Load()
	fmt.Fprintf(stdout, "overload: %d requests — %d served (%d brownout-degraded), %d shed with 429+Retry-After, %d client timeouts/errors\n",
		total, ok.Load(), brown.Load(), shed.Load(), errs.Load())
	if shed.Load() > 0 {
		fmt.Fprintf(stdout, "overload: goodput %.0f req/s over the ramp; the spike was absorbed by shedding, not by queueing doomed work\n",
			float64(ok.Load())/duration.Seconds())
	} else {
		fmt.Fprintf(stdout, "overload: goodput %.0f req/s over the ramp; the cluster stayed inside its admission limits — nothing needed shedding\n",
			float64(ok.Load())/duration.Seconds())
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replserve: %v\n", err)
		os.Exit(1)
	}
}
