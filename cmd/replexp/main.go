// Command replexp regenerates the paper's evaluation artifacts — the
// Table-1 workload audit, Figures 1-3 and the §5.2 storage-equivalence
// claim — plus the extension studies (ablation, drift, redirect,
// sensitivity, threshold). Results print as aligned text tables (mean
// ± 95 % CI over the runs) and can additionally be written as CSV.
//
// Usage:
//
//	replexp -exp table1|fig1|fig2|fig3|equiv|all
//	        -exp ablation|drift|redirect|sensitivity|threshold
//	        -exp queueing|period|weights|degraded|critpath|recovery|flashcrowd|scrub|overload
//	        [-scale paper|quick] [-runs N] [-seed N] [-requests N] [-csv DIR]
//	        [-progress=false]
//
// Long sweeps narrate to stderr by default — one line per run setup and per
// sweep point, with wall-clock and plan statistics; -progress=false silences
// them.
//
// "-exp all" covers the paper's own artifacts; the extension studies run
// only when named explicitly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
)

func writeCSV(stdout io.Writer, dir, name string, fig *repro.Figure) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.WriteCSV(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "(csv written to %s)\n", path)
	return nil
}

// experimentSpec describes one runnable experiment.
type experimentSpec struct {
	name  string
	inAll bool // part of "-exp all" (the paper's own artifacts)
	run   func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error
}

// figureExperiment adapts a figure-producing experiment.
func figureExperiment(name string, inAll bool, f func(repro.ExperimentOptions) (*repro.Figure, error)) experimentSpec {
	return experimentSpec{
		name:  name,
		inAll: inAll,
		run: func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error {
			fig, err := f(opts)
			if err != nil {
				return err
			}
			if err := fig.WriteTable(stdout); err != nil {
				return err
			}
			if plot {
				fmt.Fprintln(stdout)
				if err := fig.WritePlot(stdout, 64, 16); err != nil {
					return err
				}
			}
			return writeCSV(stdout, csvDir, name, fig)
		},
	}
}

var experiments = []experimentSpec{
	{
		name:  "table1",
		inAll: true,
		run: func(opts repro.ExperimentOptions, stdout io.Writer, _ string, _ bool) error {
			sum, err := repro.Table1(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Table 1: workload audit ==")
			return sum.Write(stdout)
		},
	},
	figureExperiment("fig1", true, repro.Figure1),
	figureExperiment("fig2", true, repro.Figure2),
	figureExperiment("fig3", true, repro.Figure3),
	{
		name:  "equiv",
		inAll: true,
		run: func(opts repro.ExperimentOptions, stdout io.Writer, _ string, _ bool) error {
			res, err := repro.StorageEquivalence(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Storage equivalence (§5.2) ==")
			return res.Write(stdout)
		},
	},
	{
		name: "ablation",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, _ string, _ bool) error {
			res, err := repro.Ablations(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Ablations: design choices vs naive splits ==")
			return res.Write(stdout)
		},
	},
	figureExperiment("drift", false, repro.DriftFigure),
	figureExperiment("redirect", false, repro.RedirectStudy),
	figureExperiment("sensitivity", false, repro.Sensitivity),
	figureExperiment("threshold", false, repro.ThresholdStudy),
	figureExperiment("queueing", false, repro.QueueingStudy),
	figureExperiment("period", false, repro.PeriodStudy),
	figureExperiment("weights", false, repro.WeightsStudy),
	figureExperiment("degraded", false, repro.DegradedMode),
	{
		name: "critpath",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, _ string, _ bool) error {
			res, err := repro.CriticalPathStudy(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Critical path: observed (traced sim) vs predicted D ==")
			return res.Write(stdout)
		},
	},
	{
		name: "recovery",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error {
			res, err := repro.Recovery(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Recovery: self-healing under a scripted site outage ==")
			if err := res.Write(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			if err := res.Timeline.WriteTable(stdout); err != nil {
				return err
			}
			if plot {
				fmt.Fprintln(stdout)
				if err := res.Timeline.WritePlot(stdout, 64, 16); err != nil {
					return err
				}
			}
			return writeCSV(stdout, csvDir, "recovery", res.Timeline)
		},
	},
	{
		name: "flashcrowd",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error {
			res, err := repro.FlashCrowd(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Flash crowd: online re-planning from live traffic ==")
			if err := res.Write(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			if err := res.Timeline.WriteTable(stdout); err != nil {
				return err
			}
			if plot {
				fmt.Fprintln(stdout)
				if err := res.Timeline.WritePlot(stdout, 64, 16); err != nil {
					return err
				}
			}
			return writeCSV(stdout, csvDir, "flashcrowd", res.Timeline)
		},
	},
	{
		name: "scrub",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error {
			res, err := repro.Scrub(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Scrub: end-to-end integrity under gray failure ==")
			return res.Write(stdout)
		},
	},
	{
		name: "overload",
		run: func(opts repro.ExperimentOptions, stdout io.Writer, csvDir string, plot bool) error {
			res, err := repro.Overload(opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== Overload: metastable failure and the admission stack ==")
			if err := res.Write(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			if err := res.Timeline.WriteTable(stdout); err != nil {
				return err
			}
			if plot {
				fmt.Fprintln(stdout)
				if err := res.Timeline.WritePlot(stdout, 64, 16); err != nil {
					return err
				}
			}
			return writeCSV(stdout, csvDir, "overload", res.Timeline)
		},
	},
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replexp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1, fig1, fig2, fig3, equiv, all, or one of ablation, drift, redirect, sensitivity, threshold, queueing, period, weights, degraded, critpath, recovery, flashcrowd, scrub, overload")
	scale := fs.String("scale", "paper", "paper (Table-1 volume, 20 runs) or quick")
	runs := fs.Int("runs", 0, "override the number of runs")
	seed := fs.Uint64("seed", 0, "override the experiment seed")
	requests := fs.Int("requests", 0, "override page requests per site")
	planWorkers := fs.Int("plan-workers", 0, "worker pool size inside each planning call; 0 = 1 (runs already parallelize; plans are identical for any value)")
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	plot := fs.Bool("plot", false, "also render figures as text charts")
	progress := fs.Bool("progress", true, "narrate run setup and sweep-point completion to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := repro.PaperExperiment()
	if *scale == "quick" {
		opts = repro.QuickExperiment()
	} else if *scale != "paper" {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *requests > 0 {
		opts.RequestsPerSite = *requests
	}
	if *planWorkers > 0 {
		opts.PlanWorkers = *planWorkers
	}
	if *progress {
		opts.Progress = repro.ProgressWriter(os.Stderr)
	}

	ran := false
	for _, spec := range experiments {
		if *exp == spec.name || (*exp == "all" && spec.inAll) {
			if err := spec.run(opts, stdout, *csvDir, *plot); err != nil {
				return fmt.Errorf("%s: %w", spec.name, err)
			}
			fmt.Fprintln(stdout)
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replexp: %v\n", err)
		os.Exit(1)
	}
}
