package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs keeps the experiment tiny: 1 run, few requests.
func quickArgs(extra ...string) []string {
	return append([]string{"-scale", "quick", "-runs", "1", "-requests", "60"}, extra...)
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-exp", "table1"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "Hot pages") {
		t.Errorf("output incomplete:\n%s", sb.String())
	}
}

func TestRunFig2WithCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(quickArgs("-exp", "fig2", "-csv", dir), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Error("missing figure table")
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Proposed") {
		t.Error("CSV incomplete")
	}
}

func TestRunEquiv(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-exp", "equiv"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "equivalence fraction") {
		t.Error("missing equivalence output")
	}
}

func TestRunExtensionNotInAll(t *testing.T) {
	// "-exp all" must not run the extensions (they're opt-in).
	var sb strings.Builder
	if err := run(quickArgs("-exp", "all"), &sb); err != nil {
		t.Fatal(err)
	}
	for _, notWant := range []string{"Ablations", "Drift:", "Redirection cost", "Sensitivity:"} {
		if strings.Contains(sb.String(), notWant) {
			t.Errorf("extension %q ran under -exp all", notWant)
		}
	}
	// But every paper artifact did.
	for _, want := range []string{"Table 1", "Figure 1", "Figure 2", "Figure 3", "equivalence"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("paper artifact %q missing under -exp all", want)
		}
	}
}

func TestRunThresholdStudy(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-exp", "threshold"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Threshold") {
		t.Error("missing threshold output")
	}
}

func TestRunRejects(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nonsense"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "huge"}, &sb); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunPlot(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("-exp", "fig2", "-plot"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*=Proposed") {
		t.Error("plot legend missing")
	}
}

func TestRunRecovery(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "recovery", "-scale", "quick", "-runs", "1", "-progress=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== Recovery: self-healing under a scripted site outage ==",
		"mean MTTR:",
		"Self-healing",
		"Fallback only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
