package main

import (
	"strings"
	"testing"

	"repro"
)

func TestRunPlanSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-storage", "0.5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"plan: D=", "feasible=true", "repository: load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlanWithOffloadVerbose(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-capacity", "0.6", "-repo", "0.6", "-verbose"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"pre-offload repository load", "NewReq", "accepted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunPlanSavesPlacement(t *testing.T) {
	path := t.TempDir() + "/p.json"
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "placement written") {
		t.Error("no save confirmation")
	}
}

func TestRunPlanFromWorkloadFile(t *testing.T) {
	// Generate a workload with replgen-equivalent API, then plan it.
	var sb strings.Builder
	wpath := t.TempDir() + "/w.json"
	if err := run([]string{"-scale", "small", "-o", t.TempDir() + "/unused.json"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Save a workload directly for the -w path.
	if err := saveSmallWorkload(wpath); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-w", wpath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "plan: D=") {
		t.Error("plan from file failed")
	}
}

func TestRunPlanRejectsMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-w", t.TempDir() + "/missing.json"}, &sb); err == nil {
		t.Error("missing workload accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

// saveSmallWorkload writes a small workload JSON for the -w tests.
func saveSmallWorkload(path string) error {
	w, err := repro.GenerateWorkload(repro.SmallWorkloadConfig(), 2026)
	if err != nil {
		return err
	}
	return w.SaveFile(path)
}
