// Command replplan runs the paper's replication planner — PARTITION,
// storage/processing constraint restoration and the repository off-loading
// negotiation — over a workload and prints the placement report and the
// constraint status of Eqs. 8-10.
//
// Usage:
//
//	replplan [-w workload.json] [-seed N] [-scale paper|small]
//	         [-storage F] [-capacity F] [-repo F] [-workers N]
//	         [-verbose] [-trace] [-o placement.json]
//
// -storage and -capacity scale the sites' budgets (1 = 100 %); -repo caps
// the repository at that fraction of the workload the sites' pre-offload
// plans would impose (0 = unconstrained), activating the negotiation, whose
// messages -verbose prints. -o saves the placement for replsim -p.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replplan", flag.ContinueOnError)
	wpath := fs.String("w", "", "workload JSON (from replgen); generated when empty")
	seed := fs.Uint64("seed", 2026, "seed for generation and estimates")
	scale := fs.String("scale", "paper", "workload scale when generating: paper or small")
	storage := fs.Float64("storage", 1, "storage budget fraction (MO part)")
	capacity := fs.Float64("capacity", 1, "site processing capacity fraction")
	repo := fs.Float64("repo", 0, "repository capacity as a fraction of the pre-offload load; 0 = unconstrained")
	workers := fs.Int("workers", 0, "planning worker pool size; 0 = GOMAXPROCS, 1 = sequential (identical plan either way)")
	verbose := fs.Bool("verbose", false, "print the off-loading protocol messages")
	trace := fs.Bool("trace", false, "print the per-phase planner span tree (durations, flip/dealloc counters)")
	out := fs.String("o", "", "write the planned placement as JSON to this path (replayable by replsim -p)")
	explain := fs.Int("explain", -1, "print the decision rationale for this page ID")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *repro.Workload
	var err error
	if *wpath != "" {
		w, err = repro.LoadWorkload(*wpath)
	} else {
		cfg := repro.DefaultWorkloadConfig()
		if *scale == "small" {
			cfg = repro.SmallWorkloadConfig()
		}
		w, err = repro.GenerateWorkload(cfg, *seed)
	}
	if err != nil {
		return err
	}

	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(*seed))
	if err != nil {
		return err
	}

	budgets := repro.FullBudgets(w).Scale(w, *storage, *capacity)
	budgets.RepoCapacity = repro.InfiniteCapacity()

	if *repo > 0 {
		// Probe: plan with an unconstrained repository to size C(R).
		probeEnv, err := repro.NewEnv(w, est, budgets)
		if err != nil {
			return err
		}
		pp, _, err := repro.Plan(probeEnv, repro.PlanOptions{Workers: *workers})
		if err != nil {
			return err
		}
		pre := repro.Evaluate(probeEnv, pp).RepoLoad
		budgets.RepoCapacity = repro.ReqPerSec(float64(pre) * *repo)
		fmt.Fprintf(stdout, "pre-offload repository load %.2f req/s; C(R) set to %.2f req/s\n\n",
			float64(pre), float64(budgets.RepoCapacity))
	}

	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		return err
	}
	var log io.Writer
	if *verbose {
		log = stdout
	}
	var span *repro.Span
	if *trace {
		span = repro.NewSpan("plan")
	}
	placement, result, err := repro.Plan(env, repro.PlanOptions{Workers: *workers, Distributed: true, MessageLog: log, Trace: span})
	if err != nil {
		return err
	}
	if err := result.Write(stdout); err != nil {
		return err
	}
	if span != nil {
		span.End()
		fmt.Fprintln(stdout)
		if err := span.Write(stdout); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout)
	if err := repro.Evaluate(env, placement).Write(stdout); err != nil {
		return err
	}
	if *explain >= 0 {
		if *explain >= w.NumPages() {
			return fmt.Errorf("page %d out of range [0,%d)", *explain, w.NumPages())
		}
		fmt.Fprintln(stdout)
		if err := repro.ExplainPage(env, placement, repro.PageID(*explain), stdout); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := placement.SaveFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nplacement written to %s\n", *out)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replplan: %v\n", err)
		os.Exit(1)
	}
}
