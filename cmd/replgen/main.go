// Command replgen generates a synthetic multimedia-repository workload per
// the paper's Table 1 and prints the generator audit (the realized value of
// every Table-1 parameter, including the §5.2 "100 % storage ≈ 1.8 GB"
// claim). Optionally the workload is saved as JSON for replplan/replsim.
//
// Usage:
//
//	replgen [-seed N] [-scale paper|small] [-o workload.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replgen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2026, "generation seed")
	scale := fs.String("scale", "paper", "workload scale: paper (Table 1) or small")
	out := fs.String("o", "", "write the workload as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg repro.WorkloadConfig
	switch *scale {
	case "paper":
		cfg = repro.DefaultWorkloadConfig()
	case "small":
		cfg = repro.SmallWorkloadConfig()
	default:
		return fmt.Errorf("unknown scale %q (want paper or small)", *scale)
	}

	w, err := repro.GenerateWorkload(cfg, *seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "workload audit (seed %d, scale %s):\n\n", *seed, *scale)
	if err := repro.SummarizeWorkload(w).Write(stdout); err != nil {
		return err
	}

	if *out != "" {
		if err := w.SaveFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nworkload written to %s\n", *out)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replgen: %v\n", err)
		os.Exit(1)
	}
}
