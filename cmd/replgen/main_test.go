package main

import (
	"strings"
	"testing"

	"repro"
)

func TestRunSmallAudit(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-seed", "7"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"workload audit", "Local sites", "Hot pages", "storage per site"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSavesWorkload(t *testing.T) {
	path := t.TempDir() + "/w.json"
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	w, err := repro.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumSites() == 0 {
		t.Error("saved workload empty")
	}
	if !strings.Contains(sb.String(), "written to") {
		t.Error("no confirmation printed")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "gigantic"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-no-such-flag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}
