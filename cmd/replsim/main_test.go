package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunSimSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "150"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"planned: D=", "Proposed", "LRU", "Local", "Remote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSimPercentilesAndQueueing(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "100", "-percentiles", "-queueing"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p99") {
		t.Error("percentile columns missing")
	}
}

func TestRunSimFromSavedPlacement(t *testing.T) {
	// Build and save a placement through the library, then replay it.
	w, err := repro.GenerateWorkload(repro.SmallWorkloadConfig(), 2026)
	if err != nil {
		t.Fatal(err)
	}
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(2026))
	if err != nil {
		t.Fatal(err)
	}
	env, err := repro.NewEnv(w, est, repro.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wpath, ppath := dir+"/w.json", dir+"/p.json"
	if err := w.SaveFile(wpath); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveFile(ppath); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-w", wpath, "-p", ppath, "-requests", "80"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "loaded placement") {
		t.Error("placement not loaded")
	}
}

func TestRunSimRejects(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-w", t.TempDir() + "/missing.json"}, &sb); err == nil {
		t.Error("missing workload accepted")
	}
	if err := run([]string{"-p", t.TempDir() + "/missing.json", "-scale", "small"}, &sb); err == nil {
		t.Error("missing placement accepted")
	}
}

func TestRunSimBySite(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "60", "-by-site"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "per-site breakdown") {
		t.Error("breakdown missing")
	}
}

func TestRunSimOutage(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "100", "-outage", "0.5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"degraded mode: site availability 0.50", "degraded"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSimRejectsBadAvailability(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "50", "-outage", "2"}, &sb); err == nil {
		t.Error("availability 2 accepted")
	}
}

func TestRunSimSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	var sb strings.Builder
	if err := run([]string{"-scale", "small", "-requests", "60", "-spans", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "span forest written to") {
		t.Fatalf("span note missing:\n%s", sb.String())
	}
	spans, err := repro.LoadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	a := repro.AnalyzeSpans(spans)
	if a.Traces == 0 {
		t.Fatal("span file holds no page traces")
	}
	if a.LocalWins+a.RemoteWins != a.Traces {
		t.Fatalf("wins %d+%d != traces %d", a.LocalWins, a.RemoteWins, a.Traces)
	}
}
