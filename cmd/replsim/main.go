// Command replsim runs one full simulation: it generates (or loads) a
// workload, plans the proposed policy under the given budgets (or loads a
// saved placement), simulates every policy of the paper's comparison —
// Proposed, ideal LRU, Local, Remote — over identical request streams, and
// prints the response-time comparison.
//
// Usage:
//
//	replsim [-w workload.json] [-p placement.json] [-seed N]
//	        [-scale paper|small] [-storage F] [-capacity F]
//	        [-requests N] [-queueing] [-percentiles]
//	        [-outage AVAIL] [-failover SECS] [-spans FILE]
//
// With -spans the Proposed policy's run records its span forest — one trace
// per page view, chains split by transfer/queue/overhead — and writes it as
// JSONL for cmd/repltrace; the export is byte-deterministic for a seed.
//
// With -outage each page view finds its local site down with probability
// 1-AVAIL and is served entirely by the repository (degraded mode), paying
// -failover seconds of detection cost; the comparison then reports how many
// views each policy served degraded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replsim", flag.ContinueOnError)
	wpath := fs.String("w", "", "workload JSON (from replgen); generated when empty")
	seed := fs.Uint64("seed", 2026, "seed for generation, estimates and traffic")
	scale := fs.String("scale", "paper", "workload scale when generating: paper or small")
	storage := fs.Float64("storage", 1, "storage budget fraction")
	capacity := fs.Float64("capacity", 1, "site capacity fraction")
	requests := fs.Int("requests", 0, "page requests per site (0 = workload default)")
	queueing := fs.Bool("queueing", false, "enable the server-occupancy queueing extension")
	ppath := fs.String("p", "", "simulate this saved placement (from replplan -o) instead of re-planning")
	percentiles := fs.Bool("percentiles", false, "also report p50/p90/p99 page response times")
	bySite := fs.Bool("by-site", false, "also break the proposed policy's page response times down per site")
	outage := fs.Float64("outage", -1, "site availability in [0,1]; arms degraded mode (negative = off)")
	failover := fs.Float64("failover", 0.25, "failover delay per degraded view, seconds (with -outage)")
	spansPath := fs.String("spans", "", "record the Proposed policy's span forest to this JSONL file (analyze with repltrace)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *repro.Workload
	var err error
	if *wpath != "" {
		w, err = repro.LoadWorkload(*wpath)
	} else {
		cfg := repro.DefaultWorkloadConfig()
		if *scale == "small" {
			cfg = repro.SmallWorkloadConfig()
		}
		w, err = repro.GenerateWorkload(cfg, *seed)
	}
	if err != nil {
		return err
	}

	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(*seed))
	if err != nil {
		return err
	}

	budgets := repro.FullBudgets(w).Scale(w, *storage, *capacity)
	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		return err
	}
	var placement *repro.Placement
	if *ppath != "" {
		placement, err = repro.LoadPlacement(w, *ppath)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded placement from %s\n\n", *ppath)
	} else {
		var planResult *repro.PlanResult
		placement, planResult, err = repro.Plan(env, repro.PlanOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "planned: D=%.2f feasible=%v\n\n", planResult.D, planResult.Feasible)
	}

	cfg := repro.DefaultSimConfig(w)
	if *requests > 0 {
		cfg.RequestsPerSite = *requests
	}
	cfg.Queueing = *queueing
	if *outage >= 0 {
		cfg.Outage = repro.OutageConfig{
			Enabled:       true,
			Availability:  *outage,
			FailoverDelay: repro.Seconds(*failover),
		}
		fmt.Fprintf(stdout, "degraded mode: site availability %.2f, failover delay %.2fs\n\n", *outage, *failover)
	}

	lru, err := repro.NewLRUPolicy(w, budgets, *seed)
	if err != nil {
		return err
	}

	type entry struct {
		pol  repro.Policy
		warm bool
	}
	entries := []entry{
		{repro.NewStaticPolicy("Proposed", placement), false},
		{lru, true},
		{repro.NewLocalPolicy(w), false},
		{repro.NewRemotePolicy(w), false},
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	header := "policy\tmean page RT\tmean optional/view\tcomposite\tlocal req\trepo req"
	if *outage >= 0 {
		header += "\tdegraded"
	}
	if *percentiles {
		header += "\tp50\tp90\tp99"
	}
	fmt.Fprintln(tw, header)
	var base float64
	var proposed *repro.SimResult
	for i, e := range entries {
		simCfg := cfg
		simCfg.Warmup = e.warm
		simCfg.RetainSamples = *percentiles
		if i == 0 && *spansPath != "" {
			simCfg.Trace = repro.NewSpanBuffer(0)
		}
		res, err := repro.Simulate(w, est, e.pol, simCfg, repro.NewStream(*seed+1))
		if err != nil {
			return err
		}
		comp := res.CompositeMean()
		if i == 0 {
			base = comp
		}
		fmt.Fprintf(tw, "%s\t%.2fs\t%.2fs\t%.2fs (%+.1f%%)\t%d\t%d",
			res.Policy, res.PageRT.Mean(), res.OptPerView.Mean(), comp,
			(comp/base-1)*100, res.LocalRequests, res.RepoRequests)
		if *outage >= 0 {
			fmt.Fprintf(tw, "\t%d", res.DegradedViews)
		}
		if *percentiles {
			fmt.Fprintf(tw, "\t%.0fs\t%.0fs\t%.0fs",
				res.Samples.Percentile(0.50), res.Samples.Percentile(0.90), res.Samples.Percentile(0.99))
		}
		fmt.Fprintln(tw)
		if i == 0 {
			proposed = res
			if simCfg.Trace != nil {
				if err := repro.SaveSpans(*spansPath, simCfg.Trace.Spans()); err != nil {
					return err
				}
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *spansPath != "" {
		fmt.Fprintf(stdout, "\nspan forest written to %s (repltrace -i %s)\n", *spansPath, *spansPath)
	}
	if *bySite && proposed != nil {
		fmt.Fprintln(stdout, "\nper-site breakdown (Proposed):")
		for si := range proposed.SitePageRT {
			acc := &proposed.SitePageRT[si]
			fmt.Fprintf(stdout, "  site %2d: mean %8.2fs over %d views\n", si, acc.Mean(), acc.N())
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replsim: %v\n", err)
		os.Exit(1)
	}
}
