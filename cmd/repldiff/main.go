// Command repldiff compares two saved placements over the same workload
// and prints the migration plan: replicas each site must fetch from the
// repository, replicas it deletes, and the reference-database marks that
// flip — the operational cost of moving from one replication plan to
// another (the off-peak work the paper's Section 4.1 schedules).
//
// Usage:
//
//	repldiff -w workload.json old.json new.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repldiff", flag.ContinueOnError)
	wpath := fs.String("w", "", "workload JSON both placements refer to (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two placement files, got %d", fs.NArg())
	}
	if *wpath == "" {
		return fmt.Errorf("-w workload.json is required")
	}

	w, err := repro.LoadWorkload(*wpath)
	if err != nil {
		return err
	}
	oldP, err := repro.LoadPlacement(w, fs.Arg(0))
	if err != nil {
		return fmt.Errorf("old placement: %w", err)
	}
	newP, err := repro.LoadPlacement(w, fs.Arg(1))
	if err != nil {
		return fmt.Errorf("new placement: %w", err)
	}

	diff, err := repro.DiffPlacements(oldP, newP)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "migration %s -> %s:\n", fs.Arg(0), fs.Arg(1))
	return diff.Write(stdout)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "repldiff: %v\n", err)
		os.Exit(1)
	}
}
