package main

import (
	"strings"
	"testing"

	"repro"
)

func fixtures(t *testing.T) (wpath, oldPath, newPath string) {
	t.Helper()
	dir := t.TempDir()
	w, err := repro.GenerateWorkload(repro.SmallWorkloadConfig(), 2026)
	if err != nil {
		t.Fatal(err)
	}
	wpath = dir + "/w.json"
	if err := w.SaveFile(wpath); err != nil {
		t.Fatal(err)
	}
	oldPath, newPath = dir+"/old.json", dir+"/new.json"
	if err := repro.AllRemote(w).SaveFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := repro.AllLocal(w).SaveFile(newPath); err != nil {
		t.Fatal(err)
	}
	return wpath, oldPath, newPath
}

func TestRunDiff(t *testing.T) {
	wpath, oldPath, newPath := fixtures(t)
	var sb strings.Builder
	if err := run([]string{"-w", wpath, oldPath, newPath}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"migration", "total migration", "replicas"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Remote→local migrates data in, frees nothing.
	if !strings.Contains(out, "0B freed") {
		t.Errorf("expected nothing freed:\n%s", out)
	}
}

func TestRunDiffValidation(t *testing.T) {
	wpath, oldPath, _ := fixtures(t)
	var sb strings.Builder
	if err := run([]string{"-w", wpath, oldPath}, &sb); err == nil {
		t.Error("one placement accepted")
	}
	if err := run([]string{oldPath, oldPath}, &sb); err == nil {
		t.Error("missing -w accepted")
	}
	if err := run([]string{"-w", wpath, oldPath, t.TempDir() + "/nope.json"}, &sb); err == nil {
		t.Error("missing placement accepted")
	}
	if err := run([]string{"-w", t.TempDir() + "/nope.json", oldPath, oldPath}, &sb); err == nil {
		t.Error("missing workload accepted")
	}
}
