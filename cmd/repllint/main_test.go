package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errOut.String())
	}
	for _, rule := range []string{
		"determinism", "rng-stream", "sorted-iteration",
		"float-compare", "telemetry-naming", "error-discipline",
		"determinism-taint", "goroutine-leak", "hotpath-alloc",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Errorf("stderr missing diagnosis: %s", errOut.String())
	}
}

// TestModuleIsClean is the driver-level acceptance check: repllint over the
// real module (the test binary runs inside it), both suites plus the
// strict stale-allow audit, reports nothing and exits 0.
func TestModuleIsClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-strict-allow", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("repllint exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestJSONOutput checks the machine-readable stream CI archives: a clean
// module emits an empty JSON array, and the encoder output stays parseable.
func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-strict-allow", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("repllint -json exited %d\nstderr:\n%s", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean module should emit [], got %d entries", len(findings))
	}
}
