package main

import (
	"strings"
	"testing"
)

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errOut.String())
	}
	for _, rule := range []string{
		"determinism", "rng-stream", "sorted-iteration",
		"float-compare", "telemetry-naming", "error-discipline",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Errorf("stderr missing diagnosis: %s", errOut.String())
	}
}

// TestModuleIsClean is the driver-level acceptance check: repllint over the
// real module (the test binary runs inside it) reports nothing and exits 0.
func TestModuleIsClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("repllint exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
