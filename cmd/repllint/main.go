// Command repllint runs the repo's custom static-analysis suite
// (internal/lint) over every package in the module and exits nonzero on
// any finding. It is stdlib-only by design — no golang.org/x/tools — and
// is wired into scripts/ci.sh between vet and the tests.
//
// Usage:
//
//	repllint [flags] [./...]
//
// The package pattern is accepted for familiarity but the tool always
// analyzes the whole module containing the working directory: the
// determinism rules are module-wide invariants, and partial runs would
// only hide findings.
//
// Flags:
//
//	-rules a,b,c             run only the named rules (default: all, both suites)
//	-list                    print the rules and exit
//	-json                    emit findings as a JSON array on stdout
//	-chains                  print the full interprocedural call chain under each finding
//	-strict-allow            stale //repllint:allow directives become errors
//	-hotpath-baseline path   hotpath-alloc baseline file (default <root>/.repllint-hotpath.json)
//	-write-hotpath-baseline  recompute the hotpath-alloc baseline, write it, and exit
//
// Findings print as "file:line: rule: message" with paths relative to the
// working directory. Graph-analyzer findings carry a call chain; -chains
// renders it as indented "  at hop (file:line)" lines, outermost entry
// point first, root cause last. Suppress an individual finding with a
// trailing "//repllint:allow <rule> — justification" comment (same line or
// the line above), or a whole file by placing the directive before the
// package clause. Allows that suppress nothing are reported as stale
// warnings after every full run (errors under -strict-allow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable finding shape archived by CI.
type jsonFinding struct {
	Rule     string   `json:"rule"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Severity string   `json:"severity"`
	Msg      string   `json:"msg"`
	Chain    []string `json:"chain,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	chains := fs.Bool("chains", false, "print interprocedural call chains under findings")
	strictAllow := fs.Bool("strict-allow", false, "treat stale //repllint:allow directives as errors")
	baselinePath := fs.String("hotpath-baseline", "", "hotpath-alloc baseline path (default <module root>/"+lint.HotpathBaselineName+")")
	writeBaseline := fs.Bool("write-hotpath-baseline", false, "recompute and write the hotpath-alloc baseline, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.GraphAnalyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *rules != "" {
		names = strings.Split(*rules, ",")
	}
	analyzers, graphAnalyzers, err := lint.SelectAnalyzers(names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(root, lint.HotpathBaselineName)
	}

	if *writeBaseline {
		pkgs, err := lint.LoadModule(root)
		if err != nil {
			fmt.Fprintln(stderr, "repllint:", err)
			return 2
		}
		g := lint.BuildGraph(pkgs)
		n, err := lint.WriteHotpathBaseline(g, *baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "repllint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "repllint: wrote %s (%d hot functions with allocations)\n",
			relTo(cwd, *baselinePath), n)
		return 0
	}

	res, err := lint.RunModuleOpts(root, lint.ModuleOptions{
		Analyzers:    analyzers,
		Graph:        graphAnalyzers,
		BaselinePath: *baselinePath,
		StrictAllow:  *strictAllow,
	})
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}

	// The stale audit is only sound when every rule ran: a partial -rules
	// run leaves other rules' allows legitimately unused.
	fullRun := len(names) == 0
	warnings := res.Stale
	if !fullRun || *strictAllow {
		warnings = nil
	}

	if *jsonOut {
		all := make([]jsonFinding, 0, len(res.Findings)+len(warnings))
		for _, f := range res.Findings {
			all = append(all, toJSON(cwd, f, "error"))
		}
		for _, f := range warnings {
			all = append(all, toJSON(cwd, f, "warning"))
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "repllint:", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			printFinding(stdout, cwd, f, "", *chains)
		}
		for _, f := range warnings {
			printFinding(stdout, cwd, f, " (warning)", *chains)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stderr, "repllint: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

// printFinding renders one finding, optionally with its indented call
// chain (outermost entry first, root cause last).
func printFinding(w io.Writer, cwd string, f lint.Finding, suffix string, chains bool) {
	fmt.Fprintf(w, "%s:%d: %s: %s%s\n", relTo(cwd, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg, suffix)
	if chains {
		for _, hop := range f.Chain {
			fmt.Fprintf(w, "    at %s\n", relTo(cwd, hop))
		}
	}
}

// toJSON converts a finding for the machine-readable stream.
func toJSON(cwd string, f lint.Finding, severity string) jsonFinding {
	chain := make([]string, 0, len(f.Chain))
	for _, hop := range f.Chain {
		chain = append(chain, relTo(cwd, hop))
	}
	return jsonFinding{
		Rule:     f.Rule,
		File:     relTo(cwd, f.Pos.Filename),
		Line:     f.Pos.Line,
		Severity: severity,
		Msg:      f.Msg,
		Chain:    chain,
	}
}

// relTo relativizes absolute paths under cwd anywhere in s — bare paths and
// paths embedded in chain hops like "pkg.Fn (/abs/file.go:12)".
func relTo(cwd, s string) string {
	if rel, err := filepath.Rel(cwd, s); err == nil && !strings.HasPrefix(rel, "..") && filepath.IsAbs(s) {
		return rel
	}
	return strings.ReplaceAll(s, cwd+string(filepath.Separator), "")
}
