// Command repllint runs the repo's custom static-analysis suite
// (internal/lint) over every package in the module and exits nonzero on
// any finding. It is stdlib-only by design — no golang.org/x/tools — and
// is wired into scripts/ci.sh between vet and the tests.
//
// Usage:
//
//	repllint [flags] [./...]
//
// The package pattern is accepted for familiarity but the tool always
// analyzes the whole module containing the working directory: the
// determinism rules are module-wide invariants, and partial runs would
// only hide findings.
//
// Flags:
//
//	-rules a,b,c   run only the named rules (default: all)
//	-list          print the rules and exit
//
// Findings print as "file:line: rule: message" with paths relative to the
// working directory. Suppress an individual finding with a trailing
// "//repllint:allow <rule> — justification" comment (same line or the line
// above), or a whole file by placing the directive before the package
// clause.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *rules != "" {
		names = strings.Split(*rules, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}

	findings, err := lint.RunModule(root, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "repllint:", err)
		return 2
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "repllint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
