// Command replreport runs the complete reproduction — every paper artifact
// and, with -extensions, every extension study — and emits a single
// self-contained Markdown report with the configuration, the Table-1 audit
// and one table per figure. It is the automated counterpart of the
// hand-annotated EXPERIMENTS.md.
//
// Usage:
//
//	replreport [-scale paper|quick] [-runs N] [-seed N] [-requests N]
//	           [-extensions] [-trace FILE] [-journal FILE] [-o report.md]
//
// With -trace (a JSONL span forest from replsim -spans or replserve -trace)
// the report appends an observability section: the Eq. 5 critical-path
// split and the five slowest traced page views. With -journal (a JSONL
// dump of /debug/journal) the section also tallies the control-plane
// flight recorder's events.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/trace"
)

// section is one report entry.
type section struct {
	name      string
	extension bool
	write     func(opts repro.ExperimentOptions, w io.Writer) error
}

func figureSection(name string, extension bool, f func(repro.ExperimentOptions) (*repro.Figure, error)) section {
	return section{
		name:      name,
		extension: extension,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			fig, err := f(opts)
			if err != nil {
				return err
			}
			return fig.WriteMarkdown(w)
		},
	}
}

var sections = []section{
	{
		name: "table1",
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			sum, err := repro.Table1(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Table 1: workload audit\n\n```\n"); err != nil {
				return err
			}
			if err := sum.Write(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "```\n")
			return err
		},
	},
	figureSection("fig1", false, repro.Figure1),
	figureSection("fig2", false, repro.Figure2),
	figureSection("fig3", false, repro.Figure3),
	{
		name: "equiv",
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.StorageEquivalence(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Storage equivalence (§5.2)\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "```\n")
			return err
		},
	},
	{
		name:      "ablation",
		extension: true,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.Ablations(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Ablations\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "```\n")
			return err
		},
	},
	figureSection("drift", true, repro.DriftFigure),
	figureSection("redirect", true, repro.RedirectStudy),
	figureSection("sensitivity", true, repro.Sensitivity),
	figureSection("threshold", true, repro.ThresholdStudy),
	figureSection("queueing", true, repro.QueueingStudy),
	figureSection("period", true, repro.PeriodStudy),
	figureSection("weights", true, repro.WeightsStudy),
	{
		name:      "critpath",
		extension: true,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.CriticalPathStudy(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Critical path: observed (traced) vs predicted D\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "```\n")
			return err
		},
	},
	{
		name:      "flashcrowd",
		extension: true,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.FlashCrowd(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Flash crowd: online re-planning from live traffic\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "```\n\n"); err != nil {
				return err
			}
			return res.Timeline.WriteMarkdown(w)
		},
	},
	{
		name:      "scrub",
		extension: true,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.Scrub(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Scrub: end-to-end integrity under gray failure\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "```\n")
			return err
		},
	},
	{
		name:      "overload",
		extension: true,
		write: func(opts repro.ExperimentOptions, w io.Writer) error {
			res, err := repro.Overload(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "### Overload: metastable failure and the admission stack\n\n```\n"); err != nil {
				return err
			}
			if err := res.Write(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "```\n\n"); err != nil {
				return err
			}
			return res.Timeline.WriteMarkdown(w)
		},
	},
}

// observabilitySection renders the recorded-trace and journal appendix.
func observabilitySection(w io.Writer, tracePath, journalPath string) error {
	if _, err := fmt.Fprintf(w, "### Observability: recorded traces\n\n"); err != nil {
		return err
	}
	if tracePath != "" {
		spans, err := repro.LoadSpans(tracePath)
		if err != nil {
			return err
		}
		a := repro.AnalyzeSpans(spans)
		total := a.Transfer + a.Queue + a.Overhead + a.RetryBackoff
		pct := func(v float64) float64 {
			if total <= 0 {
				return 0
			}
			return 100 * v / total
		}
		fmt.Fprintf(w, "Trace `%s`: %d spans, %d page views; local chain won %d, remote %d (%d degraded).\n",
			tracePath, a.Spans, a.Traces, a.LocalWins, a.RemoteWins, a.DegradedViews)
		fmt.Fprintf(w, "Time split: transfer %.1f%%, queue %.1f%%, overhead %.1f%%, retry/backoff %.1f%%.\n\n",
			pct(a.Transfer), pct(a.Queue), pct(a.Overhead), pct(a.RetryBackoff))
		fmt.Fprintf(w, "Slowest traced pages:\n\n")
		fmt.Fprintf(w, "| trace | page | observed D (s) | critical path |\n|---|---|---|---|\n")
		for _, v := range a.TopSlowest(5) {
			fmt.Fprintf(w, "| `%016x` | %d | %.4f | %s |\n", uint64(v.Trace), v.Page, v.D, v.Winner)
		}
		fmt.Fprintln(w)
	}
	if journalPath != "" {
		f, err := os.Open(journalPath)
		if err != nil {
			return err
		}
		events, err := trace.ReadEventsJSONL(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Control-plane journal `%s`: %d events.\n\n", journalPath, len(events))
		fmt.Fprintf(w, "| event | count |\n|---|---|\n")
		for _, tc := range repro.CountJournalEvents(events) {
			fmt.Fprintf(w, "| %s | %d |\n", tc.Type, tc.Count)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replreport", flag.ContinueOnError)
	scale := fs.String("scale", "paper", "paper or quick")
	runs := fs.Int("runs", 0, "override the number of runs")
	seed := fs.Uint64("seed", 0, "override the experiment seed")
	requests := fs.Int("requests", 0, "override page requests per site")
	extensions := fs.Bool("extensions", false, "include the extension studies")
	tracePath := fs.String("trace", "", "append an observability section analyzing this span forest (JSONL)")
	journalPath := fs.String("journal", "", "include this control-plane journal dump (JSONL) in the observability section")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := repro.PaperExperiment()
	if *scale == "quick" {
		opts = repro.QuickExperiment()
	} else if *scale != "paper" {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *requests > 0 {
		opts.RequestsPerSite = *requests
	}

	w := stdout
	var file *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		file = f
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	fmt.Fprintf(w, "# Reproduction report\n\n")
	fmt.Fprintf(w, "Loukopoulos & Ahmad, *Replicating the Contents of a WWW Multimedia Repository to Minimize Download Time* (IPPS 2000).\n\n")
	reqs := opts.Workload.RequestsPerSite
	if opts.RequestsPerSite > 0 {
		reqs = opts.RequestsPerSite
	}
	fmt.Fprintf(w, "Configuration: %d sites, %d objects, %d runs per point, %d requests per site, seed %d.\n",
		opts.Workload.Sites, opts.Workload.GlobalObjects, opts.Runs, reqs, opts.Seed)
	fmt.Fprintf(w, "Response times are reported relative to the proposed policy with no constraints, as in the paper.\n\n")

	for _, sec := range sections {
		if sec.extension && !*extensions {
			continue
		}
		if err := sec.write(opts, w); err != nil {
			return fmt.Errorf("%s: %w", sec.name, err)
		}
		fmt.Fprintln(w)
	}

	if *tracePath != "" || *journalPath != "" {
		if err := observabilitySection(w, *tracePath, *journalPath); err != nil {
			return fmt.Errorf("observability: %w", err)
		}
	}

	if file != nil {
		if bw, ok := w.(*bufio.Writer); ok {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "replreport: %v\n", err)
		os.Exit(1)
	}
}
