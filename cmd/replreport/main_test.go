package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunReportQuick(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "quick", "-runs", "1", "-requests", "60"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Reproduction report",
		"### Table 1: workload audit",
		"### Figure 1",
		"### Figure 2",
		"### Figure 3",
		"### Storage equivalence",
		"| storage % |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Extensions are opt-in.
	if strings.Contains(out, "### Ablations") || strings.Contains(out, "Sensitivity") {
		t.Error("extensions ran without -extensions")
	}
}

func TestRunReportToFile(t *testing.T) {
	path := t.TempDir() + "/report.md"
	var sb strings.Builder
	if err := run([]string{"-scale", "quick", "-runs", "1", "-requests", "50", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# Reproduction report") {
		t.Error("file report incomplete")
	}
	if !strings.Contains(sb.String(), "report written") {
		t.Error("no confirmation on stdout")
	}
}

func TestRunReportRejects(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "nope"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}
