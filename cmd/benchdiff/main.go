// Command benchdiff compares two benchmark result files written by
// scripts/bench.sh and fails when a watched benchmark regressed.
//
// Usage:
//
//	benchdiff [-threshold PCT] [-filter regexp] [-min-ns N] old.json new.json
//
// Benchmarks are matched by package + name. Every matched pair is printed
// with its ns/op delta; pairs whose name matches -filter (default: the
// planner series Plan|Partition|Offload|Scratch) are *gated* — if any gated
// pair's ns/op grew by more than -threshold percent (default 15), benchdiff
// exits 1. Benchmarks present in only one file are reported but never fail
// the run. -min-ns (default 100000) exempts sub-100µs benchmarks from the
// gate: at the single-pass benchtime CI uses, their timings are noise.
//
// scripts/benchdiff.sh wraps this with "newest two BENCH_*.json" discovery;
// scripts/ci.sh runs it after the benchmark stage, warn-only locally and
// fatal in the CI workflow (CI_BENCHDIFF_FATAL=1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// benchFile mirrors the JSON document bench.sh writes.
type benchFile struct {
	Stamp      string      `json:"stamp"`
	Go         string      `json:"go"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Package     string   `json:"package"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func (b benchLine) key() string { return b.Package + "." + b.Name }

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// diff compares old and new results, writes the report to w and returns the
// gated benchmark names whose ns/op regressed beyond thresholdPct.
func diff(w io.Writer, oldF, newF *benchFile, gate *regexp.Regexp, thresholdPct, minNs float64) []string {
	oldBy := map[string]benchLine{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.key()] = b
	}

	fmt.Fprintf(w, "old: %s (%s)\nnew: %s (%s)\n\n", oldF.Stamp, oldF.Benchtime, newF.Stamp, newF.Benchtime)
	fmt.Fprintf(w, "%-64s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")

	var regressed []string
	seen := map[string]bool{}
	for _, nb := range newF.Benchmarks {
		seen[nb.key()] = true
		ob, ok := oldBy[nb.key()]
		if !ok {
			fmt.Fprintf(w, "%-64s %14s %14.0f %8s\n", nb.key(), "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		mark := ""
		if gate.MatchString(nb.Name) {
			if nb.NsPerOp >= minNs && delta > thresholdPct {
				mark = "  REGRESSED"
				regressed = append(regressed, nb.key())
			} else {
				mark = "  gated"
			}
		}
		fmt.Fprintf(w, "%-64s %14.0f %14.0f %+7.1f%%%s\n", nb.key(), ob.NsPerOp, nb.NsPerOp, delta, mark)
	}
	var gone []string
	for k := range oldBy {
		if !seen[k] {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Fprintf(w, "%-64s %14.0f %14s %8s\n", k, oldBy[k].NsPerOp, "-", "gone")
	}
	return regressed
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 15, "fail when a gated benchmark's ns/op grows by more than this percentage")
	filter := fs.String("filter", "Plan|Partition|Offload|Scratch", "regexp selecting the gated benchmark names")
	minNs := fs.Float64("min-ns", 100000, "gate only benchmarks at or above this many ns/op (smaller ones are timing noise at 1x)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("want exactly two arguments: old.json new.json")
	}
	gate, err := regexp.Compile(*filter)
	if err != nil {
		return 2, fmt.Errorf("bad -filter: %w", err)
	}
	oldF, err := load(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newF, err := load(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	regressed := diff(stdout, oldF, newF, gate, *threshold, *minNs)
	if len(regressed) > 0 {
		fmt.Fprintf(stdout, "\n%d gated benchmark(s) regressed beyond %.0f%%:\n", len(regressed), *threshold)
		for _, k := range regressed {
			fmt.Fprintf(stdout, "  %s\n", k)
		}
		return 1, nil
	}
	fmt.Fprintf(stdout, "\nno gated regression beyond %.0f%%\n", *threshold)
	return 0, nil
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	}
	os.Exit(code)
}
