package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, stamp string, entries ...string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	doc := `{"stamp": "` + stamp + `", "go": "go test", "benchtime": "1x", "benchmarks": [` +
		strings.Join(entries, ",") + `]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func entry(pkg, name string, ns float64) string {
	return fmt.Sprintf(`{"package": %q, "name": %q, "iterations": 1, "ns_per_op": %g, "bytes_per_op": null, "allocs_per_op": null}`,
		pkg, name, ns)
}

func TestBenchdiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", "A",
		entry("repro/internal/core", "BenchmarkPlan/workers=1", 1e7),
		entry("repro", "BenchmarkGenerate", 5e6))
	cur := writeBench(t, dir, "new.json", "B",
		entry("repro/internal/core", "BenchmarkPlan/workers=1", 1.1e7), // +10% < 15%
		entry("repro", "BenchmarkGenerate", 9e6))                       // +80% but not gated

	var out strings.Builder
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no gated regression") {
		t.Errorf("missing pass line:\n%s", out.String())
	}
}

func TestBenchdiffFailsOnGatedRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", "A",
		entry("repro/internal/core", "BenchmarkPlan/workers=4", 1e7))
	cur := writeBench(t, dir, "new.json", "B",
		entry("repro/internal/core", "BenchmarkPlan/workers=4", 1.3e7)) // +30%

	var out strings.Builder
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED mark:\n%s", out.String())
	}
}

func TestBenchdiffMinNsExemptsNoise(t *testing.T) {
	dir := t.TempDir()
	// A 2µs benchmark doubling is single-pass timing noise, not a regression.
	old := writeBench(t, dir, "old.json", "A",
		entry("repro/internal/core", "BenchmarkScratchBuild", 2000))
	cur := writeBench(t, dir, "new.json", "B",
		entry("repro/internal/core", "BenchmarkScratchBuild", 4000))

	var out strings.Builder
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
}

func TestBenchdiffAddedAndRemovedAreReported(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", "A",
		entry("repro/internal/core", "BenchmarkOffloadParallel/workers=1", 1e7),
		entry("repro", "BenchmarkGone", 1e6))
	cur := writeBench(t, dir, "new.json", "B",
		entry("repro/internal/core", "BenchmarkOffloadParallel/workers=1", 1e7),
		entry("repro", "BenchmarkAdded", 1e6))

	var out strings.Builder
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"BenchmarkAdded", "new", "BenchmarkGone", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out strings.Builder
	if code, err := run([]string{"only-one.json"}, &out); code != 2 || err == nil {
		t.Errorf("one arg: code %d err %v, want 2 and error", code, err)
	}
	if code, err := run([]string{"-filter", "(", "a.json", "b.json"}, &out); code != 2 || err == nil {
		t.Errorf("bad filter: code %d err %v, want 2 and error", code, err)
	}
	if code, err := run([]string{"missing-a.json", "missing-b.json"}, &out); code != 2 || err == nil {
		t.Errorf("missing files: code %d err %v, want 2 and error", code, err)
	}
}
