package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/trace"
)

// writeSeedTrace simulates the proposed policy at the repltrace defaults
// (small scale, seed 2026, storage 0.5) with tracing armed and writes the
// span forest where a replsim -spans run would.
func writeSeedTrace(t *testing.T, dir string) string {
	t.Helper()
	w, err := repro.GenerateWorkload(repro.SmallWorkloadConfig(), 2026)
	if err != nil {
		t.Fatal(err)
	}
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(2026))
	if err != nil {
		t.Fatal(err)
	}
	budgets := repro.FullBudgets(w).Scale(w, 0.5, 1)
	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.DefaultSimConfig(w)
	cfg.RequestsPerSite = 40
	cfg.Trace = repro.NewSpanBuffer(0)
	if _, err := repro.Simulate(w, est, repro.NewStaticPolicy("Proposed", p), cfg, repro.NewStream(2027)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.jsonl")
	if err := repro.SaveSpans(path, cfg.Trace.Spans()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObservedVsPredicted(t *testing.T) {
	dir := t.TempDir()
	in := writeSeedTrace(t, dir)
	chrome := filepath.Join(dir, "trace.json")
	journal := filepath.Join(dir, "journal.jsonl")

	// A small journal dump, as /debug/journal would emit it.
	j := trace.NewJournal(8)
	j.Record("probe.transition", trace.A("from", "up"), trace.A("to", "suspect"))
	j.Record("probe.transition", trace.A("from", "suspect"), trace.A("to", "down"))
	j.Record("repair.planned", trace.I("rehomed", 3))
	f, err := os.Create(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-i", in, "-chrome", chrome, "-journal", journal}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Eq. 5 critical path",
		"predicted D (scale small, seed 2026, storage 0.50)",
		"pages outside +/-25% of predicted D",
		"probe.transition",
		"repair.planned",
		"Chrome trace written",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	// The Chrome export must be valid trace-event JSON with one event per span.
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	spans, err := repro.LoadSpans(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != len(spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(ct.TraceEvents), len(spans))
	}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" {
			t.Fatalf("malformed chrome event: %+v", ev)
		}
	}
}

func TestNoPredict(t *testing.T) {
	dir := t.TempDir()
	in := writeSeedTrace(t, dir)
	var out bytes.Buffer
	if err := run([]string{"-i", in, "-predict=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "predicted") {
		t.Fatalf("-predict=false still predicted:\n%s", out.String())
	}
}

func TestMissingInput(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -i accepted")
	}
	if err := run([]string{"-i", "/does/not/exist.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Fatal("nonexistent input accepted")
	}
}
