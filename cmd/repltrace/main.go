// Command repltrace ingests a recorded span forest (replsim -spans, or
// replserve -trace) and reports each page's observed Eq. 5 critical path:
// which chain won the max, where the time went (transfer vs queue vs
// protocol overhead vs retry/backoff), the slowest traced views, and — when
// the planning environment is regenerated from the same seed — the observed
// mean page time against the planner's predicted D, flagging every page
// outside tolerance.
//
// The predicted side rebuilds exactly what replsim/replserve planned: the
// same workload scale, seed, and storage fraction yield the same placement,
// so the comparison needs no side-channel state — just the flags that
// produced the trace. -predict=false skips it (for traces from foreign
// environments).
//
// With -chrome the span forest is additionally converted to Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing; with -journal
// a control-plane journal dump (JSONL, from /debug/journal) is tallied
// alongside.
//
// Usage:
//
//	repltrace -i trace.jsonl [-seed N] [-scale small|paper] [-storage F]
//	          [-tolerance F] [-top N] [-pages N] [-predict=false]
//	          [-chrome out.json] [-journal journal.jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"repro"
	"repro/internal/model"
	"repro/internal/trace"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repltrace", flag.ContinueOnError)
	in := fs.String("i", "", "span forest to analyze (JSONL, required)")
	seed := fs.Uint64("seed", 2026, "seed the traced run planned with (feeds the predicted side)")
	scale := fs.String("scale", "small", "workload scale the traced run used: small or paper")
	storage := fs.Float64("storage", 0.5, "storage budget fraction the traced run planned at")
	tolerance := fs.Float64("tolerance", 0.25, "relative deviation beyond which a page is flagged")
	top := fs.Int("top", 5, "slowest traced views to list")
	pages := fs.Int("pages", 12, "per-page rows to print (0 = all)")
	predict := fs.Bool("predict", true, "regenerate the planning environment and compare observed vs predicted D")
	chrome := fs.String("chrome", "", "also write the forest as Chrome trace-event JSON to this file")
	journal := fs.String("journal", "", "also tally a control-plane journal dump (JSONL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-i trace.jsonl is required")
	}

	spans, err := repro.LoadSpans(*in)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s holds no spans", *in)
	}
	a := repro.AnalyzeSpans(spans)
	fmt.Fprintf(stdout, "trace: %d spans, %d page views, %d pages\n", a.Spans, a.Traces, len(a.Pages))
	for _, nc := range a.NameCounts() {
		fmt.Fprintf(stdout, "  %-9s %6d\n", nc.Name, nc.Count)
	}

	total := a.Transfer + a.Queue + a.Overhead + a.RetryBackoff
	pct := func(v float64) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * v / total
	}
	fmt.Fprintf(stdout, "\nEq. 5 critical path: local chain won %d views, remote chain %d (%d degraded)\n",
		a.LocalWins, a.RemoteWins, a.DegradedViews)
	fmt.Fprintf(stdout, "time split: transfer %.1f%%  queue %.1f%%  overhead %.1f%%  retry/backoff %.1f%%  (%d retries, %d fallbacks, %d breaker events)\n",
		pct(a.Transfer), pct(a.Queue), pct(a.Overhead), pct(a.RetryBackoff),
		a.Retries, a.Fallbacks, a.BreakerEvents)

	if *top > 0 {
		fmt.Fprintf(stdout, "\nslowest views:\n")
		for _, v := range a.TopSlowest(*top) {
			fmt.Fprintf(stdout, "  trace %016x  page %4d  %10.4fs  (%s chain)\n", uint64(v.Trace), v.Page, v.D, v.Winner)
		}
	}

	var penv *repro.Env
	var placement *repro.Placement
	if *predict {
		penv, placement, err = rebuildPlan(*scale, *seed, *storage)
		if err != nil {
			return fmt.Errorf("rebuild planning environment (-predict=false to skip): %w", err)
		}
	}

	fmt.Fprintf(stdout, "\nper-page critical path")
	if penv != nil {
		fmt.Fprintf(stdout, " vs predicted D (scale %s, seed %d, storage %.2f)", *scale, *seed, *storage)
	}
	fmt.Fprintln(stdout, ":")
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	header := "page\tviews\tobserved D\twinner (l/r)\tretry+backoff"
	if penv != nil {
		header += "\tpredicted D\tdeviation\tpred winner\tflag"
	}
	fmt.Fprintln(tw, header)

	// Rank pages by observed mean D so the expensive ones lead the table.
	ranked := append([]trace.PageStats(nil), a.Pages...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].MeanD > ranked[j].MeanD {
			return true
		}
		if ranked[i].MeanD < ranked[j].MeanD {
			return false
		}
		return ranked[i].Page < ranked[j].Page
	})
	flagged, compared := 0, 0
	for rank, ps := range ranked {
		show := *pages == 0 || rank < *pages
		if show {
			fmt.Fprintf(tw, "%d\t%d\t%.4fs\t%d/%d\t%.3fs", ps.Page, ps.Views, ps.MeanD, ps.LocalWins, ps.RemoteWins, ps.RetryBackoff)
		}
		if penv != nil {
			pred, predWinner := predictedD(penv, placement, ps.Page)
			if pred > 0 {
				compared++
				rel := (ps.MeanD - pred) / pred
				out := math.Abs(rel) > *tolerance
				if out {
					flagged++
				}
				if show {
					mark := ""
					if out {
						mark = "OUT"
					}
					fmt.Fprintf(tw, "\t%.4fs\t%+.1f%%\t%s\t%s", pred, 100*rel, predWinner, mark)
				}
			} else if show {
				fmt.Fprintf(tw, "\t-\t-\t-\t")
			}
		}
		if show {
			fmt.Fprintln(tw)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *pages != 0 && len(ranked) > *pages {
		fmt.Fprintf(stdout, "  ... %d more pages (-pages 0 for all)\n", len(ranked)-*pages)
	}
	if penv != nil {
		fmt.Fprintf(stdout, "\n%d of %d pages outside +/-%.0f%% of predicted D\n", flagged, compared, 100**tolerance)
	}

	if *journal != "" {
		events, err := readJournal(*journal)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ncontrol-plane journal: %d events\n", len(events))
		for _, tc := range trace.CountEventTypes(events) {
			fmt.Fprintf(stdout, "  %-18s %6d\n", tc.Type, tc.Count)
		}
	}

	if *chrome != "" {
		if err := repro.SaveChromeTrace(*chrome, spans); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nChrome trace written to %s (load in Perfetto or chrome://tracing)\n", *chrome)
	}
	return nil
}

// rebuildPlan regenerates the traced run's planning environment — the same
// construction replsim and replserve perform for the given flags.
func rebuildPlan(scale string, seed uint64, storage float64) (*repro.Env, *repro.Placement, error) {
	cfg := repro.SmallWorkloadConfig()
	switch scale {
	case "small":
	case "paper":
		cfg = repro.DefaultWorkloadConfig()
	default:
		return nil, nil, fmt.Errorf("unknown scale %q", scale)
	}
	w, err := repro.GenerateWorkload(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	est, err := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(seed))
	if err != nil {
		return nil, nil, err
	}
	budgets := repro.FullBudgets(w).Scale(w, storage, 1)
	env, err := repro.NewEnv(w, est, budgets)
	if err != nil {
		return nil, nil, err
	}
	p, _, err := repro.Plan(env, repro.PlanOptions{})
	if err != nil {
		return nil, nil, err
	}
	return env, p, nil
}

// predictedD evaluates the planner's Eq. 5 page time and its max side for
// one page; 0 when the page is outside the regenerated workload.
func predictedD(env *repro.Env, p *repro.Placement, page int) (float64, string) {
	if page < 0 || page >= len(env.W.Pages) {
		return 0, ""
	}
	j := repro.PageID(page)
	local := float64(model.PageLocalTime(env, p, j))
	remote := float64(model.PageRemoteTime(env, p, j))
	if remote >= local {
		return remote, "remote"
	}
	return local, "local"
}

// readJournal loads a JSONL journal dump.
func readJournal(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadEventsJSONL(f)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "repltrace: %v\n", err)
		os.Exit(1)
	}
}
